//! The interpreter: executes a verified module, optionally recording a trace
//! and optionally flipping one bit somewhere along the way.

use ftkr_ir::decode::{DInst, DOperand, DOperandKind, DecodedFunction, DecodedModule, FUSED_TAIL};
use ftkr_ir::verify::verify_executable;
use ftkr_ir::{
    BinKind, BlockId, CastKind, CmpKind, FunctionId, Module, Op, Operand, ValueId,
    VerifyError,
};
use ftkr_ir::inst::Intrinsic;

use crate::fault::{FaultSpec, FaultTarget};
use crate::location::Location;
use crate::memory::{MemError, Memory};
use crate::output::ProgramOutput;
use crate::snapshot::{SnapshotImage, VmSnapshot};
use crate::trace::{EventKind, LocationId, MarkerKind, MarkerRecord, ReadSpan, Trace, TraceEvent};
use crate::value::Value;
use crate::visitor::{EventCtx, TraceVisitor, WalkEnd};

/// Reasons a run can abort; all of them map to the paper's *Crashed*
/// manifestation (crash or hang).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TrapKind {
    /// Load or store outside valid memory (the segmentation faults that
    /// dominate KMEANS input-location injections in the paper).
    OutOfBounds,
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// The dynamic step limit was exceeded (proxy for a hang).
    StepLimit,
    /// The call-depth limit was exceeded.
    CallDepth,
    /// An `alloca` exceeded the memory limit.
    OutOfMemory,
    /// An operand had the wrong runtime kind (e.g. a float used as address).
    TypeMismatch,
    /// A register was read before being defined.
    UninitializedRegister,
}

impl std::fmt::Display for TrapKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TrapKind::OutOfBounds => "out-of-bounds memory access",
            TrapKind::DivisionByZero => "integer division by zero",
            TrapKind::StepLimit => "dynamic step limit exceeded (hang)",
            TrapKind::CallDepth => "call depth limit exceeded",
            TrapKind::OutOfMemory => "allocation limit exceeded",
            TrapKind::TypeMismatch => "operand kind mismatch",
            TrapKind::UninitializedRegister => "read of an undefined register",
        };
        f.write_str(s)
    }
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RunOutcome {
    /// The program ran to completion (its verification phase decides whether
    /// the result is acceptable).
    Completed,
    /// The program crashed or hung.
    Trapped(TrapKind),
}

impl RunOutcome {
    /// True when the program completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }
}

/// Which part of the run a tracing interpreter records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TraceScope {
    /// Record every dynamic instruction (the default).
    Full,
    /// Record only the dynamic steps in `[start, end)` — the region-scoped
    /// mode used by per-region analyses (Figures 5/6): dynamic indices are
    /// transferable between runs of a deterministic program, so the event
    /// range of a region instance in a full reference trace selects the same
    /// instructions here, at a fraction of the recording cost.  The produced
    /// trace's [`Trace::base_step`] equals `start`.
    Window {
        /// First dynamic step recorded.
        start: u64,
        /// Past-the-end dynamic step.
        end: u64,
    },
}

impl TraceScope {
    /// True when the given dynamic step should be recorded.
    pub fn contains(self, step: u64) -> bool {
        match self {
            TraceScope::Full => true,
            TraceScope::Window { start, end } => step >= start && step < end,
        }
    }

    /// Number of steps recorded, if bounded.
    pub fn len(self) -> Option<u64> {
        match self {
            TraceScope::Full => None,
            TraceScope::Window { start, end } => Some(end.saturating_sub(start)),
        }
    }

    /// True when the scope records nothing.
    pub fn is_empty(self) -> bool {
        self.len() == Some(0)
    }
}

/// Recording options orthogonal to *which* steps are traced (that is
/// [`TraceScope`]): what gets written per recorded step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceOpts {
    /// Elide loop marker events (`LoopBegin`/`LoopIter`/`LoopEnd`) from the
    /// event stream at record time, logging them in the compact out-of-band
    /// marker table instead ([`Trace::markers`]).  Markers carry no dataflow,
    /// so taint/DDDG analyses are unaffected, and the code-region partitioner
    /// falls back to the marker table plus the module's static loop info —
    /// but event indices no longer equal dynamic steps (use
    /// [`Trace::step_of`]), and marker-elided traces must not be mixed with
    /// ordinary ones in index-aligned faulty/clean comparisons.
    pub skip_markers: bool,
}

/// Interpreter configuration.
#[derive(Debug, Clone, Copy)]
pub struct VmConfig {
    /// Record a dynamic trace (needed for analysis runs, not for campaign
    /// runs).
    pub record_trace: bool,
    /// Which dynamic steps to record when tracing (full run by default).
    pub trace_scope: TraceScope,
    /// Per-step recording options (marker elision).
    pub trace_opts: TraceOpts,
    /// Expected dynamic step count of the run (usually the step count of a
    /// prior untraced run).  Used to pre-size the trace's event and operand
    /// buffers so a tracing run performs O(1) vector allocations.
    pub trace_hint: Option<u64>,
    /// Optional single-bit fault to inject.
    pub fault: Option<FaultSpec>,
    /// Maximum dynamic instructions before the run is declared hung.
    pub max_steps: u64,
    /// Maximum memory cells (globals + stack).
    pub max_memory_cells: u64,
    /// Maximum call depth.
    pub max_call_depth: u32,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            record_trace: false,
            trace_scope: TraceScope::Full,
            trace_opts: TraceOpts::default(),
            trace_hint: None,
            fault: None,
            max_steps: 200_000_000,
            max_memory_cells: 1 << 24,
            max_call_depth: 512,
        }
    }
}

impl VmConfig {
    /// Configuration for an analysis run: tracing on, no fault.
    pub fn tracing() -> Self {
        VmConfig {
            record_trace: true,
            ..Default::default()
        }
    }

    /// Tracing configuration pre-sized for a run of about `steps` dynamic
    /// instructions (typically the step count of a prior untraced run).
    pub fn tracing_sized(steps: u64) -> Self {
        VmConfig {
            record_trace: true,
            trace_hint: Some(steps),
            ..Default::default()
        }
    }

    /// Region-scoped tracing: record only the dynamic steps in
    /// `[start, end)`.  See [`TraceScope::Window`].
    pub fn tracing_region(start: u64, end: u64) -> Self {
        VmConfig {
            record_trace: true,
            trace_scope: TraceScope::Window { start, end },
            ..Default::default()
        }
    }

    /// Configuration for a faulty run without tracing (campaign run).
    pub fn with_fault(fault: FaultSpec) -> Self {
        VmConfig {
            fault: Some(fault),
            ..Default::default()
        }
    }

    /// Configuration for a faulty run *with* tracing (fine-grained analysis
    /// of one injection, e.g. the paper's Figure 7).
    pub fn tracing_with_fault(fault: FaultSpec) -> Self {
        VmConfig {
            record_trace: true,
            fault: Some(fault),
            ..Default::default()
        }
    }

    /// Builder form: set the expected step count used to pre-size trace
    /// buffers.
    pub fn with_trace_hint(mut self, steps: u64) -> Self {
        self.trace_hint = Some(steps);
        self
    }

    /// Builder form: restrict tracing to the given scope.
    pub fn scoped(mut self, scope: TraceScope) -> Self {
        self.trace_scope = scope;
        self
    }

    /// Builder form: elide loop marker events from the recorded stream
    /// (see [`TraceOpts::skip_markers`]).
    pub fn without_markers(mut self) -> Self {
        self.trace_opts.skip_markers = true;
        self
    }
}

/// Everything a run produces.  `PartialEq` compares outcome, step count,
/// outputs, memory image and trace — the full observable state, which is
/// what the snapshot/restore equivalence tests assert on.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Number of dynamic instructions executed.
    pub steps: u64,
    /// The program's output stream.
    pub outputs: ProgramOutput,
    /// Final memory image (used by application verification phases).
    pub memory: Memory,
    /// The dynamic trace, when tracing was enabled.
    pub trace: Option<Trace>,
}

impl RunResult {
    /// Convenience: final contents of a global as floats.
    pub fn global_f64(&self, name: &str) -> Option<Vec<f64>> {
        self.memory.read_global_f64(name)
    }

    /// Convenience: final contents of a global as integers.
    pub fn global_i64(&self, name: &str) -> Option<Vec<i64>> {
        self.memory.read_global_i64(name)
    }
}

/// The interpreter.
#[derive(Debug, Clone)]
pub struct Vm {
    config: VmConfig,
}

/// One live call frame.  `Clone` (and `pub(crate)`) so [`VmSnapshot`] can
/// capture and restore the whole frame stack.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    func: FunctionId,
    frame_id: u32,
    block: BlockId,
    ip: usize,
    regs: Vec<Option<Value>>,
    /// Interned [`LocationId`] of each register (lazy, `NO_ID` = not yet
    /// interned).  Allocated only when tracing.
    reg_ids: Vec<u32>,
    args: Vec<Value>,
    arg_locs: Vec<Option<LocationId>>,
    stack_mark: u64,
    /// Register of the *caller* that receives this frame's return value.
    ret_dest: Option<(usize, ValueId)>,
}

/// Sentinel for "location not interned yet" in the dense id tables.
const NO_ID: u32 = u32::MAX;

/// Operand resolution for the untraced hot loop: no location interning, no
/// operand pooling — just the value.  A free function over the split borrows
/// of [`Interp::run_hot_decoded`], so the loop's held frame reference is the
/// only frame access per read.
#[inline]
fn hot_operand(
    frame: &Frame,
    df: &DecodedFunction,
    global_bases: &[u64],
    operand: DOperand,
) -> Result<Value, TrapKind> {
    match operand.unpack() {
        DOperandKind::Value(v) => frame.regs[v.index()].ok_or(TrapKind::UninitializedRegister),
        DOperandKind::Arg(i) => frame
            .args
            .get(i as usize)
            .copied()
            .ok_or(TrapKind::UninitializedRegister),
        DOperandKind::ConstI(i) => Ok(Value::I(df.consts_i[i as usize])),
        DOperandKind::ConstF(i) => Ok(Value::F(df.consts_f[i as usize])),
        DOperandKind::Global(g) => Ok(Value::P(global_bases[g as usize])),
    }
}

/// Intern a register location through the frame's dense per-register table:
/// O(1), no hashing — the hot path of trace recording.
fn intern_reg(trace: &mut Trace, frame: &mut Frame, v: ValueId) -> LocationId {
    let slot = &mut frame.reg_ids[v.index()];
    if *slot == NO_ID {
        *slot = u32::try_from(trace.locations.len()).expect("≤ 2^32 locations per trace");
        trace
            .locations
            .push(Location::reg(frame.func, frame.frame_id, v));
    }
    LocationId(*slot)
}

/// Intern a memory-cell location through the address-indexed dense table.
fn intern_mem(trace: &mut Trace, mem_ids: &mut Vec<u32>, addr: u64) -> LocationId {
    let a = addr as usize;
    if a >= mem_ids.len() {
        mem_ids.resize(a + 1, NO_ID);
    }
    let slot = &mut mem_ids[a];
    if *slot == NO_ID {
        *slot = u32::try_from(trace.locations.len()).expect("≤ 2^32 locations per trace");
        trace.locations.push(Location::mem(addr));
    }
    LocationId(*slot)
}

impl Vm {
    /// Create an interpreter with the given configuration.
    pub fn new(config: VmConfig) -> Self {
        Vm { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// Execute the module's `main` function.
    pub fn run(&self, module: &Module) -> Result<RunResult, VerifyError> {
        verify_executable(module)?;
        let (entry, _) = module
            .function_by_name("main")
            .expect("verify_executable guarantees main");
        Ok(self.execute(module, entry, Vec::new()))
    }

    /// Execute an arbitrary entry function with arguments (used by tests and
    /// by the MPI driver, which runs one entry per rank).
    pub fn run_function(
        &self,
        module: &Module,
        entry: &str,
        args: Vec<Value>,
    ) -> Result<RunResult, VerifyError> {
        ftkr_ir::verify::verify_module(module)?;
        let (fid, f) = module
            .function_by_name(entry)
            .ok_or(VerifyError::NoMain)?;
        assert_eq!(
            f.num_args as usize,
            args.len(),
            "entry function argument count mismatch"
        );
        Ok(self.execute(module, fid, args))
    }

    fn execute(&self, module: &Module, entry: FunctionId, args: Vec<Value>) -> RunResult {
        Interp::new(module, &self.config, false).run(entry, args)
    }

    /// Execute the module's `main` function, streaming every dynamic event to
    /// `visitors` **without materializing a trace**: the run keeps only the
    /// interned location table and a one-event scratch buffer, so analyses
    /// ride along in O(locations) memory instead of O(events) — the
    /// no-materialization path campaign executors use to classify outcomes
    /// and detect patterns per injection (see [`crate::visitor`]).
    ///
    /// Visitors observe exactly the events a materialized trace with the same
    /// configuration would contain (same order, same operand reads, same
    /// interned ids); [`RunResult::trace`] is always `None`.  The fault,
    /// scope and limit configuration of the [`Vm`] apply unchanged.
    pub fn run_with_visitors(
        &self,
        module: &Module,
        visitors: &mut [&mut dyn TraceVisitor],
    ) -> Result<RunResult, VerifyError> {
        verify_executable(module)?;
        let (entry, _) = module
            .function_by_name("main")
            .expect("verify_executable guarantees main");
        let mut config = self.config;
        config.record_trace = true;
        Ok(Interp::new(module, &config, true).run_with_visitors(entry, Vec::new(), visitors))
    }

    /// Execute the prefix `[0, step)` of the module's `main` function and
    /// capture the complete interpreter state as a [`VmSnapshot`], without
    /// materializing a trace.  The instruction at `step` has **not** executed
    /// when the snapshot is taken, so a fault at `at_step == step` lands
    /// correctly in a resumed run.
    ///
    /// The prefix is executed with trace recording forced on (streamed and
    /// discarded), so the snapshot's interning tables are exactly those a
    /// cold recording run builds over the same prefix — the property that
    /// keeps resumed traces and streamed event indices bit-identical to cold
    /// runs.  The [`Vm`]'s fault, scope and limit configuration apply to the
    /// prefix unchanged (campaign executors capture with a fault-free
    /// configuration).
    ///
    /// Returns `Ok(None)` when the run finishes or traps before reaching
    /// `step` (including via `max_steps`): state past the end of the program
    /// does not exist. `step == 0` captures the initial state with the entry
    /// frame pushed.
    pub fn snapshot_at(
        &self,
        module: &Module,
        step: u64,
    ) -> Result<Option<VmSnapshot>, VerifyError> {
        verify_executable(module)?;
        let (entry, _) = module
            .function_by_name("main")
            .expect("verify_executable guarantees main");
        let mut config = self.config;
        config.record_trace = true;
        let mut interp = Interp::new(module, &config, true);
        let frame = interp.make_frame(entry, Vec::new(), Vec::new(), None);
        interp.frames.push(frame);
        let mut emitted = 0u64;
        while interp.steps < step {
            if interp.steps >= config.max_steps {
                return Ok(None);
            }
            let flow = interp.step();
            // Discard the streamed event, keeping only the cursor: the
            // snapshot records *how many* events the prefix delivered, not
            // the events themselves.
            if let Some(event) = interp.trace.events.pop() {
                interp.trace.pool.truncate(event.reads.offset as usize);
                interp.event_steps.clear();
                emitted += 1;
            }
            match flow {
                StepFlow::Continue => {}
                StepFlow::Finished | StepFlow::Trap(_) => return Ok(None),
            }
        }
        Ok(Some(interp.capture(emitted)))
    }

    /// Resume execution from a snapshot and run to completion, exactly as if
    /// the capturing run had continued past the fork point.  Deterministic
    /// programs make the composition `snapshot_at(s)` + `resume_from` equal
    /// to one uninterrupted run — outputs, final memory, outcome and step
    /// count — with one exception the campaign executors exploit: the
    /// [`Vm`]'s fault applies to the *resumed* steps, so a fault with
    /// `at_step >= snapshot.step()` strikes identically to a cold faulty
    /// run while the prefix is never re-executed.
    ///
    /// `max_steps` counts absolute steps (the prefix included), so hang
    /// detection behaves as in a cold run.  The memory-cell limit is the
    /// capturing run's (the image carries it); tracing follows this [`Vm`]'s
    /// configuration and records only resumed steps — the produced trace's
    /// `base_step` starts at the fork point (or the scope window, if later).
    pub fn resume_from(
        &self,
        module: &Module,
        snapshot: &VmSnapshot,
    ) -> Result<RunResult, VerifyError> {
        verify_executable(module)?;
        Ok(Interp::from_snapshot(module, &self.config, false, snapshot)
            .run_loop(None, snapshot.events_emitted() as usize))
    }

    /// Resume execution from a snapshot, streaming every resumed event to
    /// `visitors` without materializing a trace (the fork-point analogue of
    /// [`Vm::run_with_visitors`]).  Event indices continue from
    /// [`VmSnapshot::events_emitted`] and the location table from the
    /// snapshot's interned prefix, so visitors observe exactly the suffix of
    /// the event stream a cold streamed run would deliver — prefix-primed
    /// consumers (e.g. streaming pattern detectors) compose bit-identically.
    pub fn resume_with_visitors(
        &self,
        module: &Module,
        snapshot: &VmSnapshot,
        visitors: &mut [&mut dyn TraceVisitor],
    ) -> Result<RunResult, VerifyError> {
        verify_executable(module)?;
        let mut config = self.config;
        config.record_trace = true;
        Ok(Interp::from_snapshot(module, &config, true, snapshot)
            .run_loop(Some(visitors), snapshot.events_emitted() as usize))
    }

    /// [`Vm::run`] through the pre-decoded dispatch tables: dense flat code,
    /// packed operands and fused compare-branch superinstructions instead of
    /// the per-step `match` over heap [`Op`] enums.  Bit-identical to the
    /// legacy path in every observable (outcome, steps, outputs, memory,
    /// trace), several times faster on loop-dominated programs.
    ///
    /// `decoded` must be [`DecodedModule::decode`] of this `module`.
    pub fn run_decoded(
        &self,
        module: &Module,
        decoded: &DecodedModule,
    ) -> Result<RunResult, VerifyError> {
        verify_executable(module)?;
        let (entry, _) = module
            .function_by_name("main")
            .expect("verify_executable guarantees main");
        let mut interp = Interp::new(module, &self.config, false);
        interp.attach_decoded(decoded);
        Ok(interp.run(entry, Vec::new()))
    }

    /// [`Vm::run_with_visitors`] through the pre-decoded dispatch tables.
    pub fn run_with_visitors_decoded(
        &self,
        module: &Module,
        decoded: &DecodedModule,
        visitors: &mut [&mut dyn TraceVisitor],
    ) -> Result<RunResult, VerifyError> {
        verify_executable(module)?;
        let (entry, _) = module
            .function_by_name("main")
            .expect("verify_executable guarantees main");
        let mut config = self.config;
        config.record_trace = true;
        let mut interp = Interp::new(module, &config, true);
        interp.attach_decoded(decoded);
        Ok(interp.run_with_visitors(entry, Vec::new(), visitors))
    }

    /// [`Vm::resume_from`] through the pre-decoded dispatch tables.
    /// Snapshots are interchangeable between the legacy and decoded paths:
    /// frames keep their original `(block, ip)` program counters, and a
    /// snapshot captured between the two halves of a fused pair resumes by
    /// executing the branch half alone.
    pub fn resume_from_decoded(
        &self,
        module: &Module,
        decoded: &DecodedModule,
        snapshot: &VmSnapshot,
    ) -> Result<RunResult, VerifyError> {
        verify_executable(module)?;
        let mut interp = Interp::from_snapshot(module, &self.config, false, snapshot);
        interp.attach_decoded(decoded);
        Ok(interp.run_loop(None, snapshot.events_emitted() as usize))
    }

    /// [`Vm::resume_with_visitors`] through the pre-decoded dispatch tables.
    pub fn resume_with_visitors_decoded(
        &self,
        module: &Module,
        decoded: &DecodedModule,
        snapshot: &VmSnapshot,
        visitors: &mut [&mut dyn TraceVisitor],
    ) -> Result<RunResult, VerifyError> {
        verify_executable(module)?;
        let mut config = self.config;
        config.record_trace = true;
        let mut interp = Interp::from_snapshot(module, &config, true, snapshot);
        interp.attach_decoded(decoded);
        Ok(interp.run_loop(Some(visitors), snapshot.events_emitted() as usize))
    }
}

struct Interp<'m> {
    module: &'m Module,
    config: VmConfig,
    memory: Memory,
    outputs: ProgramOutput,
    trace: Trace,
    /// Interned [`LocationId`] per memory cell (lazy, `NO_ID` sentinel).
    mem_ids: Vec<u32>,
    frames: Vec<Frame>,
    steps: u64,
    next_frame_id: u32,
    /// Stream events to visitors instead of materializing them: each recorded
    /// event is handed over and immediately discarded, so `trace` never grows
    /// beyond the location table plus a one-event scratch buffer.
    streaming: bool,
    /// Pre-decoded dispatch tables: when set, the run loop uses
    /// [`Interp::step_decoded`] (dense flat code, fused superinstructions)
    /// instead of the legacy per-`Op` match.  Semantics are bit-identical.
    decoded: Option<&'m DecodedModule>,
    /// Absolute source lines per function, materialized from the decoded
    /// delta streams — only when a decoded run records a trace.
    dlines: Vec<Vec<u32>>,
    /// Dynamic step of each event currently in `trace.events`, kept only in
    /// streaming mode: a fused dispatch can emit two events per call, so the
    /// run loop can no longer derive event steps from the step counter alone.
    event_steps: Vec<u64>,
    /// Base address per [`GlobalId`], resolved once when decoded tables are
    /// attached.  Globals are laid out at construction and never move, so
    /// decoded operand resolution skips the name-keyed extent scan the
    /// legacy path performs per read.
    global_bases: Vec<u64>,
}

enum StepFlow {
    Continue,
    Finished,
    Trap(TrapKind),
}

impl<'m> Interp<'m> {
    fn new(module: &'m Module, config: &VmConfig, streaming: bool) -> Self {
        // Pre-size the trace from the expected step count (clamped to the
        // scope window and the step limit): tracing then allocates O(1)
        // vectors instead of growing them geometrically.  A scope window's
        // length is an exact event count, so it serves as the hint when no
        // explicit one is given.  Streaming runs retain no events, so they
        // never pre-size.
        let trace = if config.record_trace && !streaming {
            let hint = match (config.trace_hint, config.trace_scope.len()) {
                (Some(h), Some(w)) => Some(h.min(w)),
                (Some(h), None) => Some(h),
                (None, Some(w)) => Some(w),
                (None, None) => None,
            }
            .map(|h| h.min(config.max_steps));
            match hint {
                Some(h) => {
                    let h = usize::try_from(h).unwrap_or(usize::MAX);
                    Trace::with_capacity(h, 2 * h)
                }
                None => Trace::new(),
            }
        } else {
            Trace::new()
        };
        let mut interp = Interp {
            module,
            config: *config,
            memory: Memory::for_module(module, config.max_memory_cells),
            outputs: ProgramOutput::default(),
            trace,
            mem_ids: Vec::new(),
            frames: Vec::new(),
            steps: 0,
            next_frame_id: 0,
            streaming,
            decoded: None,
            dlines: Vec::new(),
            event_steps: Vec::new(),
            global_bases: Vec::new(),
        };
        if let TraceScope::Window { start, .. } = config.trace_scope {
            interp.trace.base_step = start;
        }
        interp
    }

    /// Switch this interpreter to decoded dispatch.  Recording runs
    /// materialize the per-function source-line tables once, up front
    /// (O(static instructions)); untraced runs never touch lines.
    fn attach_decoded(&mut self, decoded: &'m DecodedModule) {
        if self.config.record_trace {
            self.dlines = decoded
                .functions
                .iter()
                .map(DecodedFunction::materialize_lines)
                .collect();
        }
        self.global_bases = self
            .module
            .globals
            .iter()
            .map(|g| {
                self.memory
                    .global_extent(&g.name)
                    .expect("verified global must be laid out")
                    .0
            })
            .collect();
        self.decoded = Some(decoded);
    }

    /// Capture the complete current state as a snapshot image.  `emitted` is
    /// the streamed-event cursor of the capturing prefix run.
    fn capture(&self, emitted: u64) -> VmSnapshot {
        VmSnapshot::new(SnapshotImage {
            step: self.steps,
            events_emitted: emitted,
            next_frame_id: self.next_frame_id,
            memory: self.memory.clone(),
            frames: self.frames.clone(),
            outputs: self.outputs.clone(),
            locations: self.trace.locations.clone(),
            mem_ids: self.mem_ids.clone(),
        })
    }

    /// Rebuild an interpreter from a snapshot: every mutable slab is copied
    /// out of the shared image (copy-on-restore), so restores never alias.
    /// When the resumed configuration does not record, the interning tables
    /// are dropped instead of copied — a plain campaign resume pays for the
    /// memory image and frames only.
    fn from_snapshot(
        module: &'m Module,
        config: &VmConfig,
        streaming: bool,
        snapshot: &VmSnapshot,
    ) -> Self {
        let img = snapshot.image();
        let recording = config.record_trace;
        let mut trace = Trace::new();
        // Resumed recording continues the prefix's interned location table,
        // so ids stay identical to a cold run's first-touch order.
        if recording {
            trace.locations = img.locations.clone();
        }
        // A resumed trace can only contain resumed steps: its base starts at
        // the fork point, or at the scope window if that opens later.
        trace.base_step = match config.trace_scope {
            TraceScope::Full => img.step,
            TraceScope::Window { start, .. } => start.max(img.step),
        };
        let frames = img
            .frames
            .iter()
            .map(|f| {
                let mut f = f.clone();
                if !recording {
                    f.reg_ids = Vec::new();
                } else if f.reg_ids.is_empty() {
                    f.reg_ids = vec![NO_ID; module.function(f.func).num_insts()];
                }
                f
            })
            .collect();
        Interp {
            module,
            config: *config,
            memory: img.memory.clone(),
            outputs: img.outputs.clone(),
            trace,
            mem_ids: if recording { img.mem_ids.clone() } else { Vec::new() },
            frames,
            steps: img.step,
            next_frame_id: img.next_frame_id,
            streaming,
            decoded: None,
            dlines: Vec::new(),
            event_steps: Vec::new(),
            global_bases: Vec::new(),
        }
    }

    fn run(self, entry: FunctionId, args: Vec<Value>) -> RunResult {
        self.run_core(entry, args, None)
    }

    /// The streaming run: every recorded event is dispatched to the visitors
    /// and immediately discarded; `on_finish` carries the run outcome.
    fn run_with_visitors(
        self,
        entry: FunctionId,
        args: Vec<Value>,
        visitors: &mut [&mut dyn TraceVisitor],
    ) -> RunResult {
        self.run_core(entry, args, Some(visitors))
    }

    fn run_core(
        mut self,
        entry: FunctionId,
        args: Vec<Value>,
        visitors: Option<&mut [&mut dyn TraceVisitor]>,
    ) -> RunResult {
        let frame = self.make_frame(entry, args, Vec::new(), None);
        self.frames.push(frame);
        self.run_loop(visitors, 0)
    }

    /// The interpreter main loop, shared by cold runs (`emitted_start == 0`)
    /// and snapshot-resumed runs (`emitted_start` = the fork point's streamed
    /// event cursor, so visitor indices continue absolutely).
    fn run_loop(
        mut self,
        mut visitors: Option<&mut [&mut dyn TraceVisitor]>,
        emitted_start: usize,
    ) -> RunResult {
        let mut emitted = emitted_start;
        // Per-operand delivery is opt-in and constant per visitor: query it
        // once instead of once per dynamic instruction.
        let wants_reads: Vec<bool> = visitors
            .as_deref()
            .map(|vs| vs.iter().map(|v| v.wants_operand_reads()).collect())
            .unwrap_or_default();

        // The hot loop handles the untraced, visitor-free configuration —
        // the overwhelming majority of campaign executions.  Any step that a
        // pending fault (or the step limit) could touch is delegated back to
        // the general dispatch below, one step at a time.
        let hot = self.decoded.is_some() && visitors.is_none() && !self.config.record_trace;

        let outcome = loop {
            if self.steps >= self.config.max_steps {
                break RunOutcome::Trapped(TrapKind::StepLimit);
            }
            if hot {
                let stop = match self.config.fault {
                    Some(f) if f.at_step >= self.steps => {
                        f.at_step.min(self.config.max_steps)
                    }
                    _ => self.config.max_steps,
                };
                if let Some(flow) = self.run_hot_decoded(stop) {
                    match flow {
                        StepFlow::Finished => break RunOutcome::Completed,
                        StepFlow::Trap(t) => break RunOutcome::Trapped(t),
                        StepFlow::Continue => unreachable!("hot loop yields via None"),
                    }
                }
                // Yielded at a boundary: re-check the limit, then run the
                // boundary step through the general dispatch.
                if self.steps >= self.config.max_steps {
                    break RunOutcome::Trapped(TrapKind::StepLimit);
                }
            }
            let flow = if self.decoded.is_some() {
                self.step_decoded()
            } else {
                self.step()
            };
            // Dispatch the events this call recorded (a fused decoded
            // dispatch can emit up to two) before acting on the flow, so a
            // final `Ret` still reaches the visitors.
            if let Some(vs) = visitors.as_deref_mut() {
                let n = self.trace.events.len();
                if n > 0 {
                    debug_assert_eq!(self.event_steps.len(), n);
                    let pool_start = self.trace.events[0].reads.offset as usize;
                    for k in 0..n {
                        let event = self.trace.events[k].clone();
                        let ctx = EventCtx {
                            index: emitted,
                            step: self.event_steps[k],
                            event: &event,
                            reads: &self.trace.pool[event.reads.range()],
                            locations: &self.trace.locations,
                        };
                        for (v, &wants) in vs.iter_mut().zip(&wants_reads) {
                            v.on_event(&ctx);
                            if wants {
                                for (nth, &(id, value)) in ctx.reads.iter().enumerate() {
                                    v.on_operand_read(&ctx, nth, id, value);
                                }
                            }
                        }
                        emitted += 1;
                    }
                    self.trace.events.clear();
                    self.event_steps.clear();
                    self.trace.pool.truncate(pool_start);
                }
            }
            match flow {
                StepFlow::Continue => {}
                StepFlow::Finished => break RunOutcome::Completed,
                StepFlow::Trap(t) => break RunOutcome::Trapped(t),
            }
        };

        if let Some(vs) = visitors {
            let end = WalkEnd {
                events: emitted,
                locations: &self.trace.locations,
                outcome: Some(outcome),
            };
            for v in vs.iter_mut() {
                v.on_finish(&end);
            }
        }

        // A trap can abort a step after its operand reads were pooled but
        // before the event was pushed; drop that dangling tail so the pool
        // length always equals the sum of the event spans.
        let pool_end = self
            .trace
            .events
            .last()
            .map_or(0, |e| e.reads.range().end);
        self.trace.pool.truncate(pool_end);

        RunResult {
            outcome,
            steps: self.steps,
            outputs: self.outputs,
            memory: self.memory,
            trace: if self.config.record_trace && !self.streaming {
                Some(self.trace)
            } else {
                None
            },
        }
    }

    fn make_frame(
        &mut self,
        func: FunctionId,
        args: Vec<Value>,
        arg_locs: Vec<Option<LocationId>>,
        ret_dest: Option<(usize, ValueId)>,
    ) -> Frame {
        let f = self.module.function(func);
        let frame_id = self.next_frame_id;
        self.next_frame_id += 1;
        Frame {
            func,
            frame_id,
            block: f.entry(),
            ip: 0,
            regs: vec![None; f.num_insts()],
            reg_ids: if self.config.record_trace {
                vec![NO_ID; f.num_insts()]
            } else {
                Vec::new()
            },
            args,
            arg_locs,
            stack_mark: self.memory.stack_mark(),
            ret_dest,
        }
    }

    /// Resolve an operand to a value plus (when recording) the interned id of
    /// the location read.
    fn resolve(
        &mut self,
        frame_idx: usize,
        operand: Operand,
        record: bool,
    ) -> Result<(Value, Option<LocationId>), TrapKind> {
        match operand {
            Operand::Value(v) => {
                let frame = &mut self.frames[frame_idx];
                let val = frame.regs[v.index()].ok_or(TrapKind::UninitializedRegister)?;
                let loc = record.then(|| intern_reg(&mut self.trace, frame, v));
                Ok((val, loc))
            }
            Operand::Arg(i) => {
                let frame = &self.frames[frame_idx];
                let val = *frame
                    .args
                    .get(i as usize)
                    .ok_or(TrapKind::UninitializedRegister)?;
                Ok((val, frame.arg_locs.get(i as usize).copied().flatten()))
            }
            Operand::ConstI(c) => Ok((Value::I(c), None)),
            Operand::ConstF(c) => Ok((Value::F(c), None)),
            Operand::Global(g) => {
                let name = &self.module.global(g).name;
                let (base, _) = self
                    .memory
                    .global_extent(name)
                    .expect("verified global must be laid out");
                Ok((Value::P(base), None))
            }
        }
    }

    /// A memory-cell fault strikes *before* the instruction at `at_step`.
    /// Called at the top of every dispatch — and again between the two halves
    /// of a fused superinstruction, which spans two dynamic steps.
    #[inline]
    fn memory_fault_hook(&mut self) {
        if let Some(fault) = self.config.fault {
            if fault.at_step == self.steps {
                if let FaultTarget::MemoryCell { addr } = fault.target {
                    if let Some(v) = self.memory.peek(addr) {
                        self.memory.poke(addr, v.flip_bit(fault.bit));
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step(&mut self) -> StepFlow {
        self.memory_fault_hook();

        let frame_idx = self.frames.len() - 1;
        let (func_id, frame_id, inst_id) = {
            let frame = &self.frames[frame_idx];
            let f = self.module.function(frame.func);
            let block = f.block(frame.block);
            let inst_id = block.insts[frame.ip];
            (frame.func, frame.frame_id, inst_id)
        };
        let func = self.module.function(func_id);
        let inst = func.inst(inst_id);
        let line = inst.line;

        // Record this step only when tracing is on *and* the step falls
        // inside the configured scope (always true for TraceScope::Full).
        let record = self.config.record_trace && self.config.trace_scope.contains(self.steps);
        let pool_start = self.trace.pool.len();
        let mut write: Option<(LocationId, Value)> = None;

        // Most instructions simply advance ip; control flow overrides this.
        self.frames[frame_idx].ip += 1;

        macro_rules! resolve {
            ($operand:expr) => {{
                match self.resolve(frame_idx, $operand, record) {
                    Ok((v, loc)) => {
                        // `loc` can be Some even when not recording (argument
                        // ids are interned for the whole tracing run so scope
                        // windows resolve outer-frame arguments); only pool
                        // reads of recorded events.
                        if record {
                            if let Some(l) = loc {
                                self.trace.pool.push((l, v));
                            }
                        }
                        v
                    }
                    Err(t) => return StepFlow::Trap(t),
                }
            }};
        }

        // Record a write to the result register of the current instruction.
        macro_rules! record_result {
            ($value:expr) => {
                if record {
                    let id = intern_reg(&mut self.trace, &mut self.frames[frame_idx], inst_id);
                    write = Some((id, $value));
                }
            };
        }

        let faulty_result = match self.config.fault {
            Some(FaultSpec {
                at_step,
                bit,
                target: FaultTarget::InstructionResult,
            }) if at_step == self.steps => Some(bit),
            _ => None,
        };
        let apply_fault = |v: Value| -> Value {
            match faulty_result {
                Some(bit) => v.flip_bit(bit),
                None => v,
            }
        };

        let mut kind = EventKind::Nop;
        let mut flow = StepFlow::Continue;

        match &inst.op {
            Op::Bin { kind: bk, lhs, rhs } => {
                let a = resolve!(*lhs);
                let b = resolve!(*rhs);
                let result = match eval_bin(*bk, a, b) {
                    Ok(v) => v,
                    Err(t) => return StepFlow::Trap(t),
                };
                let result = apply_fault(result);
                self.frames[frame_idx].regs[inst_id.index()] = Some(result);
                kind = EventKind::Bin(*bk);
                record_result!(result);
            }
            Op::Cmp {
                kind: ck,
                float,
                lhs,
                rhs,
            } => {
                let a = resolve!(*lhs);
                let b = resolve!(*rhs);
                let result = match eval_cmp(*ck, *float, a, b) {
                    Ok(v) => v,
                    Err(t) => return StepFlow::Trap(t),
                };
                let result = apply_fault(Value::I(result as i64));
                self.frames[frame_idx].regs[inst_id.index()] = Some(result);
                kind = EventKind::Cmp {
                    kind: *ck,
                    float: *float,
                    result: result.is_truthy(),
                };
                record_result!(result);
            }
            Op::Cast { kind: ck, src } => {
                let v = resolve!(*src);
                let result = match eval_cast(*ck, v) {
                    Ok(v) => v,
                    Err(t) => return StepFlow::Trap(t),
                };
                let result = apply_fault(result);
                self.frames[frame_idx].regs[inst_id.index()] = Some(result);
                kind = EventKind::Cast(*ck);
                record_result!(result);
            }
            Op::Select {
                cond,
                then_v,
                else_v,
            } => {
                let c = resolve!(*cond);
                let a = resolve!(*then_v);
                let b = resolve!(*else_v);
                let result = apply_fault(if c.is_truthy() { a } else { b });
                self.frames[frame_idx].regs[inst_id.index()] = Some(result);
                kind = EventKind::Select;
                record_result!(result);
            }
            Op::Load { addr } => {
                let a = resolve!(*addr);
                let Some(addr) = a.as_ptr() else {
                    return StepFlow::Trap(TrapKind::TypeMismatch);
                };
                let loaded = match self.memory.load(addr) {
                    Ok(v) => v,
                    Err(MemError::OutOfBounds { .. }) => {
                        return StepFlow::Trap(TrapKind::OutOfBounds)
                    }
                };
                if record {
                    let id = intern_mem(&mut self.trace, &mut self.mem_ids, addr);
                    self.trace.pool.push((id, loaded));
                }
                let result = apply_fault(loaded);
                self.frames[frame_idx].regs[inst_id.index()] = Some(result);
                kind = EventKind::Load;
                record_result!(result);
            }
            Op::Store { addr, value } => {
                let a = resolve!(*addr);
                let v = resolve!(*value);
                let Some(addr) = a.as_ptr() else {
                    return StepFlow::Trap(TrapKind::TypeMismatch);
                };
                let stored = apply_fault(v);
                if let Err(MemError::OutOfBounds { .. }) = self.memory.store(addr, stored) {
                    return StepFlow::Trap(TrapKind::OutOfBounds);
                }
                kind = EventKind::Store;
                if record {
                    let id = intern_mem(&mut self.trace, &mut self.mem_ids, addr);
                    write = Some((id, stored));
                }
            }
            Op::Alloca { size, .. } => {
                let Some(base) = self.memory.alloca(*size as u64) else {
                    return StepFlow::Trap(TrapKind::OutOfMemory);
                };
                let result = Value::P(base);
                self.frames[frame_idx].regs[inst_id.index()] = Some(result);
                kind = EventKind::Alloca {
                    base,
                    size: *size as u64,
                };
                record_result!(result);
            }
            Op::Gep { base, index } => {
                let b = resolve!(*base);
                let i = resolve!(*index);
                let (Some(base), Some(idx)) = (b.as_ptr(), i.as_i64()) else {
                    return StepFlow::Trap(TrapKind::TypeMismatch);
                };
                let addr = (base as i64).wrapping_add(idx) as u64;
                let result = apply_fault(Value::P(addr));
                self.frames[frame_idx].regs[inst_id.index()] = Some(result);
                kind = EventKind::Gep;
                record_result!(result);
            }
            Op::Call { callee, args } => {
                if self.frames.len() as u32 >= self.config.max_call_depth {
                    return StepFlow::Trap(TrapKind::CallDepth);
                }
                let (callee_id, _) = self
                    .module
                    .function_by_name(callee)
                    .expect("verified callee exists");
                let mut arg_vals = Vec::with_capacity(args.len());
                let mut arg_locs = Vec::with_capacity(args.len());
                for a in args {
                    // Intern argument locations whenever tracing is on (not
                    // just inside the scope window) so frames entered before
                    // a window still resolve their argument reads inside it.
                    let (v, loc) =
                        match self.resolve(frame_idx, *a, self.config.record_trace) {
                            Ok(x) => x,
                            Err(t) => return StepFlow::Trap(t),
                        };
                    if record {
                        if let Some(l) = loc {
                            self.trace.pool.push((l, v));
                        }
                    }
                    arg_vals.push(v);
                    arg_locs.push(loc);
                }
                kind = EventKind::Call { callee: callee_id };
                let new_frame =
                    self.make_frame(callee_id, arg_vals, arg_locs, Some((frame_idx, inst_id)));
                self.frames.push(new_frame);
            }
            Op::CallIntrinsic { intrinsic, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(resolve!(*a));
                }
                let result = match eval_intrinsic(*intrinsic, &vals) {
                    Ok(v) => v,
                    Err(t) => return StepFlow::Trap(t),
                };
                let result = apply_fault(result);
                self.frames[frame_idx].regs[inst_id.index()] = Some(result);
                kind = EventKind::Intrinsic;
                record_result!(result);
            }
            Op::Ret { value } => {
                let ret_val = match value {
                    Some(v) => Some(resolve!(*v)),
                    None => None,
                };
                kind = EventKind::Ret;
                let frame = self.frames.pop().expect("at least one frame");
                self.memory.release_to(frame.stack_mark);
                match frame.ret_dest {
                    Some((caller_idx, dest)) => {
                        let ret_val = apply_fault(ret_val.unwrap_or(Value::I(0)));
                        let caller = &mut self.frames[caller_idx];
                        caller.regs[dest.index()] = Some(ret_val);
                        if record {
                            let id = intern_reg(&mut self.trace, caller, dest);
                            write = Some((id, ret_val));
                        }
                    }
                    None => {
                        flow = StepFlow::Finished;
                    }
                }
            }
            Op::Br { target } => {
                let frame = &mut self.frames[frame_idx];
                frame.block = *target;
                frame.ip = 0;
                kind = EventKind::Br;
            }
            Op::CondBr {
                cond,
                then_b,
                else_b,
            } => {
                let c = resolve!(*cond);
                let taken = c.is_truthy();
                let frame = &mut self.frames[frame_idx];
                frame.block = if taken { *then_b } else { *else_b };
                frame.ip = 0;
                kind = EventKind::CondBr { taken };
            }
            Op::Output { value, format } => {
                let v = resolve!(*value);
                self.outputs.emit(v, *format);
                kind = EventKind::Output { format: *format };
            }
            Op::LoopBegin {
                id, depth, kind: lk, ..
            } => {
                kind = EventKind::LoopBegin {
                    id: *id,
                    depth: *depth,
                    kind: *lk,
                };
            }
            Op::LoopEnd { id } => {
                kind = EventKind::LoopEnd { id: *id };
            }
            Op::LoopIter { id } => {
                kind = EventKind::LoopIter { id: *id };
            }
            Op::Nop => {}
        }

        if record {
            // Marker elision: loop markers carry no dataflow, so under
            // `skip_markers` they go to the compact out-of-band table instead
            // of the event stream.
            let elide = self.config.trace_opts.skip_markers && kind.is_marker();
            if elide {
                // Streaming runs retain no trace, so there is nothing for a
                // marker record to annotate — and `events.len()` (always ~0
                // there) could not position it anyway.  Drop the marker.
                if !self.streaming {
                    let marker = match kind {
                        EventKind::LoopBegin { id, depth, kind } => {
                            MarkerKind::Begin { id, depth, kind }
                        }
                        EventKind::LoopEnd { id } => MarkerKind::End { id },
                        EventKind::LoopIter { id } => MarkerKind::Iter { id },
                        _ => unreachable!("is_marker covers exactly the loop markers"),
                    };
                    self.trace.markers.push(MarkerRecord {
                        at_event: u32::try_from(self.trace.events.len())
                            .expect("≤ 2^32 events per trace"),
                        func: func_id,
                        frame: frame_id,
                        kind: marker,
                    });
                }
            } else {
                let len = (self.trace.pool.len() - pool_start) as u32;
                let offset = u32::try_from(pool_start).expect("≤ 2^32 operand reads per trace");
                self.trace.events.push(TraceEvent {
                    func: func_id,
                    frame: frame_id,
                    inst: inst_id,
                    line,
                    kind,
                    reads: ReadSpan { offset, len },
                    write,
                });
                if self.streaming {
                    self.event_steps.push(self.steps);
                }
            }
        }
        self.steps += 1;
        flow
    }

    /// Resolve a packed decoded operand; mirrors [`Interp::resolve`] exactly
    /// (same interning, same trap conditions), with constants and globals
    /// coming from the decoded tables.
    fn resolve_d(
        &mut self,
        frame_idx: usize,
        df: &DecodedFunction,
        operand: DOperand,
        record: bool,
    ) -> Result<(Value, Option<LocationId>), TrapKind> {
        match operand.unpack() {
            DOperandKind::Value(v) => {
                let frame = &mut self.frames[frame_idx];
                let val = frame.regs[v.index()].ok_or(TrapKind::UninitializedRegister)?;
                let loc = record.then(|| intern_reg(&mut self.trace, frame, v));
                Ok((val, loc))
            }
            DOperandKind::Arg(i) => {
                let frame = &self.frames[frame_idx];
                let val = *frame
                    .args
                    .get(i as usize)
                    .ok_or(TrapKind::UninitializedRegister)?;
                Ok((val, frame.arg_locs.get(i as usize).copied().flatten()))
            }
            DOperandKind::ConstI(i) => Ok((Value::I(df.consts_i[i as usize]), None)),
            DOperandKind::ConstF(i) => Ok((Value::F(df.consts_f[i as usize]), None)),
            DOperandKind::Global(g) => Ok((Value::P(self.global_bases[g as usize]), None)),
        }
    }

    /// Push one recorded event from the decoded path (the decoded analogue of
    /// the tail of [`Interp::step`]): marker elision, read-span closing, and
    /// source lines from the materialized delta tables.
    #[allow(clippy::too_many_arguments)]
    fn push_event_decoded(
        &mut self,
        func: FunctionId,
        frame: u32,
        inst: ValueId,
        lin: usize,
        kind: EventKind,
        pool_start: usize,
        write: Option<(LocationId, Value)>,
    ) {
        let elide = self.config.trace_opts.skip_markers && kind.is_marker();
        if elide {
            if !self.streaming {
                let marker = match kind {
                    EventKind::LoopBegin { id, depth, kind } => {
                        MarkerKind::Begin { id, depth, kind }
                    }
                    EventKind::LoopEnd { id } => MarkerKind::End { id },
                    EventKind::LoopIter { id } => MarkerKind::Iter { id },
                    _ => unreachable!("is_marker covers exactly the loop markers"),
                };
                self.trace.markers.push(MarkerRecord {
                    at_event: u32::try_from(self.trace.events.len())
                        .expect("≤ 2^32 events per trace"),
                    func,
                    frame,
                    kind: marker,
                });
            }
        } else {
            let line = self.dlines[func.index()][lin];
            let len = (self.trace.pool.len() - pool_start) as u32;
            let offset = u32::try_from(pool_start).expect("≤ 2^32 operand reads per trace");
            self.trace.events.push(TraceEvent {
                func,
                frame,
                inst,
                line,
                kind,
                reads: ReadSpan { offset, len },
                write,
            });
            if self.streaming {
                self.event_steps.push(self.steps);
            }
        }
    }

    /// The tight dispatch loop of the decoded path for the common campaign
    /// configuration: no trace recording, no visitors, and no fault pending
    /// before `stop`.  Executes decoded instructions back-to-back without
    /// any per-step fault/trace bookkeeping — the per-step overhead that
    /// dominates an untraced run — and yields (`None`) exactly at `stop`,
    /// where the caller re-runs the general dispatch for one step (a fault
    /// boundary) or raises the step limit.  Bit-identical to repeated
    /// [`Interp::step_decoded`] calls in every observable: steps, traps,
    /// outputs, memory, and frame program counters.
    ///
    /// Returns `Some(flow)` when the program finishes or traps, `None` when
    /// the step budget `stop` is reached with the program still running.
    #[allow(clippy::too_many_lines)]
    fn run_hot_decoded(&mut self, stop: u64) -> Option<StepFlow> {
        let dm = self.decoded.expect("hot loop requires decoded tables");
        debug_assert!(!self.config.record_trace, "hot loop cannot record");
        // Split the interpreter into disjoint borrows once, so the loop can
        // hold one frame reference across operand resolution and the result
        // write instead of re-indexing `self.frames` per access, and count
        // steps in a register instead of a memory cell.
        let Interp {
            module,
            frames,
            memory,
            outputs,
            steps,
            next_frame_id,
            config,
            global_bases,
            ..
        } = self;
        let mut frame_idx = frames.len() - 1;
        let mut df = dm.function(frames[frame_idx].func);
        let mut nsteps = *steps;
        loop {
            if nsteps >= stop {
                *steps = nsteps;
                return None;
            }
            let frame = &mut frames[frame_idx];
            let lin = df.lin(frame.block, frame.ip);
            let packed = df.flat_map[lin];
            let dinst = df.code[(packed & !FUSED_TAIL) as usize];
            let iid = ValueId(df.lin_iids[lin]);
            frame.ip += 1;

            macro_rules! hres {
                ($operand:expr) => {{
                    match hot_operand(frame, df, global_bases, $operand) {
                        Ok(v) => v,
                        Err(t) => {
                            *steps = nsteps;
                            return Some(StepFlow::Trap(t));
                        }
                    }
                }};
            }
            macro_rules! bail {
                ($trap:expr) => {{
                    *steps = nsteps;
                    return Some(StepFlow::Trap($trap));
                }};
            }

            // A snapshot captured between the halves of a fused pair
            // restores with the program counter on the branch half: execute
            // it alone (exactly like the general dispatch).
            if packed & FUSED_TAIL != 0 {
                let DInst::CmpBr { then_b, else_b, .. } = dinst else {
                    unreachable!("FUSED_TAIL only marks CmpBr branch halves");
                };
                let cond_reg = ValueId(df.lin_iids[lin - 1]);
                let c = hres!(DOperand::reg(cond_reg));
                let taken = c.is_truthy();
                frame.block = BlockId(if taken { then_b } else { else_b });
                frame.ip = 0;
                nsteps += 1;
                continue;
            }

            match dinst {
                DInst::Bin { kind, lhs, rhs } => {
                    let a = hres!(lhs);
                    let b = hres!(rhs);
                    let result = match eval_bin(kind, a, b) {
                        Ok(v) => v,
                        Err(t) => bail!(t),
                    };
                    frame.regs[iid.index()] = Some(result);
                }
                DInst::Cmp {
                    kind, float, lhs, rhs,
                } => {
                    let a = hres!(lhs);
                    let b = hres!(rhs);
                    let result = match eval_cmp(kind, float, a, b) {
                        Ok(v) => v,
                        Err(t) => bail!(t),
                    };
                    frame.regs[iid.index()] = Some(Value::I(result as i64));
                }
                DInst::CmpBr {
                    kind,
                    float,
                    lhs,
                    rhs,
                    then_b,
                    else_b,
                } => {
                    // The fused pair spans two dynamic steps and must not
                    // straddle `stop` (a fault or the step limit could land
                    // between the halves): yield and let the general
                    // dispatch handle the boundary.
                    if nsteps + 2 > stop {
                        frame.ip -= 1;
                        *steps = nsteps;
                        return None;
                    }
                    let a = hres!(lhs);
                    let b = hres!(rhs);
                    let result = match eval_cmp(kind, float, a, b) {
                        Ok(v) => v,
                        Err(t) => bail!(t),
                    };
                    frame.regs[iid.index()] = Some(Value::I(result as i64));
                    frame.block = BlockId(if result { then_b } else { else_b });
                    frame.ip = 0;
                    nsteps += 2;
                    continue;
                }
                DInst::Cast { kind, src } => {
                    let v = hres!(src);
                    let result = match eval_cast(kind, v) {
                        Ok(v) => v,
                        Err(t) => bail!(t),
                    };
                    frame.regs[iid.index()] = Some(result);
                }
                DInst::Select {
                    cond,
                    then_v,
                    else_v,
                } => {
                    let c = hres!(cond);
                    let a = hres!(then_v);
                    let b = hres!(else_v);
                    let result = if c.is_truthy() { a } else { b };
                    frame.regs[iid.index()] = Some(result);
                }
                DInst::Load { addr } => {
                    let a = hres!(addr);
                    let Some(addr) = a.as_ptr() else {
                        bail!(TrapKind::TypeMismatch);
                    };
                    let loaded = match memory.load(addr) {
                        Ok(v) => v,
                        Err(MemError::OutOfBounds { .. }) => bail!(TrapKind::OutOfBounds),
                    };
                    frame.regs[iid.index()] = Some(loaded);
                }
                DInst::Store { addr, value } => {
                    let a = hres!(addr);
                    let v = hres!(value);
                    let Some(addr) = a.as_ptr() else {
                        bail!(TrapKind::TypeMismatch);
                    };
                    if let Err(MemError::OutOfBounds { .. }) = memory.store(addr, v) {
                        bail!(TrapKind::OutOfBounds);
                    }
                }
                DInst::Alloca { size } => {
                    let Some(base) = memory.alloca(u64::from(size)) else {
                        bail!(TrapKind::OutOfMemory);
                    };
                    frame.regs[iid.index()] = Some(Value::P(base));
                }
                DInst::Gep { base, index } => {
                    let b = hres!(base);
                    let i = hres!(index);
                    let (Some(base), Some(idx)) = (b.as_ptr(), i.as_i64()) else {
                        bail!(TrapKind::TypeMismatch);
                    };
                    let addr = (base as i64).wrapping_add(idx) as u64;
                    frame.regs[iid.index()] = Some(Value::P(addr));
                }
                DInst::Call { callee, args } => {
                    // The top frame is always `frame_idx`, so the depth
                    // check stays ahead of operand resolution (the trap
                    // order the legacy dispatch exhibits) without touching
                    // `frames` while `frame` is borrowed.
                    if (frame_idx + 1) as u32 >= config.max_call_depth {
                        bail!(TrapKind::CallDepth);
                    }
                    let n = args.len as usize;
                    let mut arg_vals = Vec::with_capacity(n);
                    for k in args.range() {
                        arg_vals.push(hres!(df.args_pool[k]));
                    }
                    // Inlined `make_frame` for the untraced configuration
                    // (`reg_ids` is only allocated when recording).
                    let f = module.function(callee);
                    let frame_id = *next_frame_id;
                    *next_frame_id += 1;
                    frames.push(Frame {
                        func: callee,
                        frame_id,
                        block: f.entry(),
                        ip: 0,
                        regs: vec![None; f.num_insts()],
                        reg_ids: Vec::new(),
                        args: arg_vals,
                        arg_locs: vec![None; n],
                        stack_mark: memory.stack_mark(),
                        ret_dest: Some((frame_idx, iid)),
                    });
                    frame_idx += 1;
                    df = dm.function(callee);
                }
                DInst::CallIntrinsic { intrinsic, args } => {
                    let mut vals = Vec::with_capacity(args.len as usize);
                    for k in args.range() {
                        vals.push(hres!(df.args_pool[k]));
                    }
                    let result = match eval_intrinsic(intrinsic, &vals) {
                        Ok(v) => v,
                        Err(t) => bail!(t),
                    };
                    frame.regs[iid.index()] = Some(result);
                }
                DInst::Ret { value } => {
                    let ret_val = match value {
                        Some(v) => Some(hres!(v)),
                        None => None,
                    };
                    let frame = frames.pop().expect("at least one frame");
                    memory.release_to(frame.stack_mark);
                    match frame.ret_dest {
                        Some((caller_idx, dest)) => {
                            frames[caller_idx].regs[dest.index()] =
                                Some(ret_val.unwrap_or(Value::I(0)));
                            frame_idx -= 1;
                            df = dm.function(frames[frame_idx].func);
                        }
                        None => {
                            *steps = nsteps + 1;
                            return Some(StepFlow::Finished);
                        }
                    }
                }
                DInst::Br { target } => {
                    frame.block = BlockId(target);
                    frame.ip = 0;
                }
                DInst::CondBr {
                    cond,
                    then_b,
                    else_b,
                } => {
                    let c = hres!(cond);
                    let taken = c.is_truthy();
                    frame.block = BlockId(if taken { then_b } else { else_b });
                    frame.ip = 0;
                }
                DInst::Output { value, format } => {
                    let v = hres!(value);
                    outputs.emit(v, format);
                }
                DInst::LoopBegin { .. }
                | DInst::LoopEnd { .. }
                | DInst::LoopIter { .. }
                | DInst::Nop => {}
            }
            nsteps += 1;
        }
    }

    /// One decoded dispatch: executes the [`DInst`] at the current frame's
    /// program counter — or, for a fused [`DInst::CmpBr`], both of its
    /// original instructions (two dynamic steps) in one call.  Bit-identical
    /// to [`Interp::step`] in every observable: traces, interning order,
    /// faults, traps, outputs and step accounting.
    #[allow(clippy::too_many_lines)]
    fn step_decoded(&mut self) -> StepFlow {
        let dm = self.decoded.expect("decoded dispatch requires tables");
        self.memory_fault_hook();

        let frame_idx = self.frames.len() - 1;
        let (func_id, frame_id, lin) = {
            let frame = &self.frames[frame_idx];
            let df = dm.function(frame.func);
            (frame.func, frame.frame_id, df.lin(frame.block, frame.ip))
        };
        let df = dm.function(func_id);
        let packed = df.flat_map[lin];
        let dinst = df.code[(packed & !FUSED_TAIL) as usize];
        let iid = ValueId(df.lin_iids[lin]);

        let record = self.config.record_trace && self.config.trace_scope.contains(self.steps);
        let pool_start = self.trace.pool.len();
        let mut write: Option<(LocationId, Value)> = None;

        // Most instructions simply advance ip; control flow overrides this.
        self.frames[frame_idx].ip += 1;

        macro_rules! resolve {
            ($operand:expr) => {{
                match self.resolve_d(frame_idx, df, $operand, record) {
                    Ok((v, loc)) => {
                        if record {
                            if let Some(l) = loc {
                                self.trace.pool.push((l, v));
                            }
                        }
                        v
                    }
                    Err(t) => return StepFlow::Trap(t),
                }
            }};
        }

        macro_rules! record_result {
            ($value:expr) => {
                if record {
                    let id = intern_reg(&mut self.trace, &mut self.frames[frame_idx], iid);
                    write = Some((id, $value));
                }
            };
        }

        let faulty_result = match self.config.fault {
            Some(FaultSpec {
                at_step,
                bit,
                target: FaultTarget::InstructionResult,
            }) if at_step == self.steps => Some(bit),
            _ => None,
        };
        let apply_fault = |v: Value| -> Value {
            match faulty_result {
                Some(bit) => v.flip_bit(bit),
                None => v,
            }
        };

        // A snapshot captured between the halves of a fused pair restores
        // with the program counter on the branch half: execute it alone.
        if packed & FUSED_TAIL != 0 {
            let DInst::CmpBr { then_b, else_b, .. } = dinst else {
                unreachable!("FUSED_TAIL only marks CmpBr branch halves");
            };
            let cond_reg = ValueId(df.lin_iids[lin - 1]);
            let c = resolve!(DOperand::reg(cond_reg));
            let taken = c.is_truthy();
            let frame = &mut self.frames[frame_idx];
            frame.block = BlockId(if taken { then_b } else { else_b });
            frame.ip = 0;
            if record {
                self.push_event_decoded(
                    func_id,
                    frame_id,
                    iid,
                    lin,
                    EventKind::CondBr { taken },
                    pool_start,
                    None,
                );
            }
            self.steps += 1;
            return StepFlow::Continue;
        }

        let mut kind = EventKind::Nop;
        let mut flow = StepFlow::Continue;

        match dinst {
            DInst::Bin { kind: bk, lhs, rhs } => {
                let a = resolve!(lhs);
                let b = resolve!(rhs);
                let result = match eval_bin(bk, a, b) {
                    Ok(v) => v,
                    Err(t) => return StepFlow::Trap(t),
                };
                let result = apply_fault(result);
                self.frames[frame_idx].regs[iid.index()] = Some(result);
                kind = EventKind::Bin(bk);
                record_result!(result);
            }
            DInst::Cmp {
                kind: ck,
                float,
                lhs,
                rhs,
            } => {
                let a = resolve!(lhs);
                let b = resolve!(rhs);
                let result = match eval_cmp(ck, float, a, b) {
                    Ok(v) => v,
                    Err(t) => return StepFlow::Trap(t),
                };
                let result = apply_fault(Value::I(result as i64));
                self.frames[frame_idx].regs[iid.index()] = Some(result);
                kind = EventKind::Cmp {
                    kind: ck,
                    float,
                    result: result.is_truthy(),
                };
                record_result!(result);
            }
            DInst::CmpBr {
                kind: ck,
                float,
                lhs,
                rhs,
                then_b,
                else_b,
            } => {
                // --- compare half (this step) ---
                let a = resolve!(lhs);
                let b = resolve!(rhs);
                let result = match eval_cmp(ck, float, a, b) {
                    Ok(v) => v,
                    Err(t) => return StepFlow::Trap(t),
                };
                let result = apply_fault(Value::I(result as i64));
                self.frames[frame_idx].regs[iid.index()] = Some(result);
                record_result!(result);
                if record {
                    self.push_event_decoded(
                        func_id,
                        frame_id,
                        iid,
                        lin,
                        EventKind::Cmp {
                            kind: ck,
                            float,
                            result: result.is_truthy(),
                        },
                        pool_start,
                        write,
                    );
                }
                self.steps += 1;
                if self.steps >= self.config.max_steps {
                    // The run loop raises StepLimit before the branch half
                    // executes — exactly where a legacy run would stop (the
                    // frame's program counter is on the branch).
                    return StepFlow::Continue;
                }

                // --- branch half (next step) ---
                self.memory_fault_hook();
                let record2 =
                    self.config.record_trace && self.config.trace_scope.contains(self.steps);
                let pool_start2 = self.trace.pool.len();
                let br_iid = ValueId(df.lin_iids[lin + 1]);
                let (c, loc) = match self.resolve_d(frame_idx, df, DOperand::reg(iid), record2) {
                    Ok(x) => x,
                    Err(t) => return StepFlow::Trap(t),
                };
                if record2 {
                    if let Some(l) = loc {
                        self.trace.pool.push((l, c));
                    }
                }
                let taken = c.is_truthy();
                let frame = &mut self.frames[frame_idx];
                frame.block = BlockId(if taken { then_b } else { else_b });
                frame.ip = 0;
                if record2 {
                    self.push_event_decoded(
                        func_id,
                        frame_id,
                        br_iid,
                        lin + 1,
                        EventKind::CondBr { taken },
                        pool_start2,
                        None,
                    );
                }
                self.steps += 1;
                return StepFlow::Continue;
            }
            DInst::Cast { kind: ck, src } => {
                let v = resolve!(src);
                let result = match eval_cast(ck, v) {
                    Ok(v) => v,
                    Err(t) => return StepFlow::Trap(t),
                };
                let result = apply_fault(result);
                self.frames[frame_idx].regs[iid.index()] = Some(result);
                kind = EventKind::Cast(ck);
                record_result!(result);
            }
            DInst::Select {
                cond,
                then_v,
                else_v,
            } => {
                let c = resolve!(cond);
                let a = resolve!(then_v);
                let b = resolve!(else_v);
                let result = apply_fault(if c.is_truthy() { a } else { b });
                self.frames[frame_idx].regs[iid.index()] = Some(result);
                kind = EventKind::Select;
                record_result!(result);
            }
            DInst::Load { addr } => {
                let a = resolve!(addr);
                let Some(addr) = a.as_ptr() else {
                    return StepFlow::Trap(TrapKind::TypeMismatch);
                };
                let loaded = match self.memory.load(addr) {
                    Ok(v) => v,
                    Err(MemError::OutOfBounds { .. }) => {
                        return StepFlow::Trap(TrapKind::OutOfBounds)
                    }
                };
                if record {
                    let id = intern_mem(&mut self.trace, &mut self.mem_ids, addr);
                    self.trace.pool.push((id, loaded));
                }
                let result = apply_fault(loaded);
                self.frames[frame_idx].regs[iid.index()] = Some(result);
                kind = EventKind::Load;
                record_result!(result);
            }
            DInst::Store { addr, value } => {
                let a = resolve!(addr);
                let v = resolve!(value);
                let Some(addr) = a.as_ptr() else {
                    return StepFlow::Trap(TrapKind::TypeMismatch);
                };
                let stored = apply_fault(v);
                if let Err(MemError::OutOfBounds { .. }) = self.memory.store(addr, stored) {
                    return StepFlow::Trap(TrapKind::OutOfBounds);
                }
                kind = EventKind::Store;
                if record {
                    let id = intern_mem(&mut self.trace, &mut self.mem_ids, addr);
                    write = Some((id, stored));
                }
            }
            DInst::Alloca { size } => {
                let Some(base) = self.memory.alloca(u64::from(size)) else {
                    return StepFlow::Trap(TrapKind::OutOfMemory);
                };
                let result = Value::P(base);
                self.frames[frame_idx].regs[iid.index()] = Some(result);
                kind = EventKind::Alloca {
                    base,
                    size: u64::from(size),
                };
                record_result!(result);
            }
            DInst::Gep { base, index } => {
                let b = resolve!(base);
                let i = resolve!(index);
                let (Some(base), Some(idx)) = (b.as_ptr(), i.as_i64()) else {
                    return StepFlow::Trap(TrapKind::TypeMismatch);
                };
                let addr = (base as i64).wrapping_add(idx) as u64;
                let result = apply_fault(Value::P(addr));
                self.frames[frame_idx].regs[iid.index()] = Some(result);
                kind = EventKind::Gep;
                record_result!(result);
            }
            DInst::Call { callee, args } => {
                if self.frames.len() as u32 >= self.config.max_call_depth {
                    return StepFlow::Trap(TrapKind::CallDepth);
                }
                let n = args.len as usize;
                let mut arg_vals = Vec::with_capacity(n);
                let mut arg_locs = Vec::with_capacity(n);
                for k in args.range() {
                    let a = df.args_pool[k];
                    // Intern argument locations whenever tracing is on (not
                    // just inside the scope window) so frames entered before
                    // a window still resolve their argument reads inside it.
                    let (v, loc) = match self.resolve_d(frame_idx, df, a, self.config.record_trace)
                    {
                        Ok(x) => x,
                        Err(t) => return StepFlow::Trap(t),
                    };
                    if record {
                        if let Some(l) = loc {
                            self.trace.pool.push((l, v));
                        }
                    }
                    arg_vals.push(v);
                    arg_locs.push(loc);
                }
                kind = EventKind::Call { callee };
                let new_frame = self.make_frame(callee, arg_vals, arg_locs, Some((frame_idx, iid)));
                self.frames.push(new_frame);
            }
            DInst::CallIntrinsic { intrinsic, args } => {
                let mut vals = Vec::with_capacity(args.len as usize);
                for k in args.range() {
                    let a = df.args_pool[k];
                    vals.push(resolve!(a));
                }
                let result = match eval_intrinsic(intrinsic, &vals) {
                    Ok(v) => v,
                    Err(t) => return StepFlow::Trap(t),
                };
                let result = apply_fault(result);
                self.frames[frame_idx].regs[iid.index()] = Some(result);
                kind = EventKind::Intrinsic;
                record_result!(result);
            }
            DInst::Ret { value } => {
                let ret_val = match value {
                    Some(v) => Some(resolve!(v)),
                    None => None,
                };
                kind = EventKind::Ret;
                let frame = self.frames.pop().expect("at least one frame");
                self.memory.release_to(frame.stack_mark);
                match frame.ret_dest {
                    Some((caller_idx, dest)) => {
                        let ret_val = apply_fault(ret_val.unwrap_or(Value::I(0)));
                        let caller = &mut self.frames[caller_idx];
                        caller.regs[dest.index()] = Some(ret_val);
                        if record {
                            let id = intern_reg(&mut self.trace, caller, dest);
                            write = Some((id, ret_val));
                        }
                    }
                    None => {
                        flow = StepFlow::Finished;
                    }
                }
            }
            DInst::Br { target } => {
                let frame = &mut self.frames[frame_idx];
                frame.block = BlockId(target);
                frame.ip = 0;
                kind = EventKind::Br;
            }
            DInst::CondBr {
                cond,
                then_b,
                else_b,
            } => {
                let c = resolve!(cond);
                let taken = c.is_truthy();
                let frame = &mut self.frames[frame_idx];
                frame.block = BlockId(if taken { then_b } else { else_b });
                frame.ip = 0;
                kind = EventKind::CondBr { taken };
            }
            DInst::Output { value, format } => {
                let v = resolve!(value);
                self.outputs.emit(v, format);
                kind = EventKind::Output { format };
            }
            DInst::LoopBegin {
                id, depth, kind: lk,
            } => {
                kind = EventKind::LoopBegin {
                    id,
                    depth,
                    kind: lk,
                };
            }
            DInst::LoopEnd { id } => {
                kind = EventKind::LoopEnd { id };
            }
            DInst::LoopIter { id } => {
                kind = EventKind::LoopIter { id };
            }
            DInst::Nop => {}
        }

        if record {
            self.push_event_decoded(func_id, frame_id, iid, lin, kind, pool_start, write);
        }
        self.steps += 1;
        flow
    }
}

fn eval_bin(kind: BinKind, a: Value, b: Value) -> Result<Value, TrapKind> {
    use BinKind::*;
    if kind.is_float() {
        let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) else {
            return Err(TrapKind::TypeMismatch);
        };
        let r = match kind {
            FAdd => x + y,
            FSub => x - y,
            FMul => x * y,
            FDiv => x / y,
            FMin => x.min(y),
            FMax => x.max(y),
            _ => unreachable!("float op"),
        };
        return Ok(Value::F(r));
    }
    let (Some(x), Some(y)) = (a.as_i64(), b.as_i64()) else {
        return Err(TrapKind::TypeMismatch);
    };
    let r = match kind {
        Add => x.wrapping_add(y),
        Sub => x.wrapping_sub(y),
        Mul => x.wrapping_mul(y),
        SDiv => {
            if y == 0 {
                return Err(TrapKind::DivisionByZero);
            }
            x.wrapping_div(y)
        }
        SRem => {
            if y == 0 {
                return Err(TrapKind::DivisionByZero);
            }
            x.wrapping_rem(y)
        }
        And => x & y,
        Or => x | y,
        Xor => x ^ y,
        Shl => ((x as u64) << (y as u64 & 63)) as i64,
        LShr => ((x as u64) >> (y as u64 & 63)) as i64,
        AShr => x >> (y as u64 & 63),
        SMin => x.min(y),
        SMax => x.max(y),
        _ => unreachable!("integer op"),
    };
    Ok(Value::I(r))
}

fn eval_cmp(kind: CmpKind, float: bool, a: Value, b: Value) -> Result<bool, TrapKind> {
    if float {
        let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) else {
            return Err(TrapKind::TypeMismatch);
        };
        Ok(match kind {
            CmpKind::Eq => x == y,
            CmpKind::Ne => x != y,
            CmpKind::Lt => x < y,
            CmpKind::Le => x <= y,
            CmpKind::Gt => x > y,
            CmpKind::Ge => x >= y,
        })
    } else {
        // Integer compares also accept pointers (address comparisons).
        let x = match a {
            Value::I(v) => v,
            Value::P(v) => v as i64,
            Value::F(_) => return Err(TrapKind::TypeMismatch),
        };
        let y = match b {
            Value::I(v) => v,
            Value::P(v) => v as i64,
            Value::F(_) => return Err(TrapKind::TypeMismatch),
        };
        Ok(match kind {
            CmpKind::Eq => x == y,
            CmpKind::Ne => x != y,
            CmpKind::Lt => x < y,
            CmpKind::Le => x <= y,
            CmpKind::Gt => x > y,
            CmpKind::Ge => x >= y,
        })
    }
}

fn eval_cast(kind: CastKind, v: Value) -> Result<Value, TrapKind> {
    match kind {
        CastKind::FpToSi => {
            let Some(x) = v.as_f64() else {
                return Err(TrapKind::TypeMismatch);
            };
            Ok(Value::I(x as i64))
        }
        CastKind::SiToFp => {
            let Some(x) = v.as_i64() else {
                return Err(TrapKind::TypeMismatch);
            };
            Ok(Value::F(x as f64))
        }
        CastKind::TruncI32 => {
            let Some(x) = v.as_i64() else {
                return Err(TrapKind::TypeMismatch);
            };
            Ok(Value::I((x as i32) as i64))
        }
        CastKind::FpRound32 => {
            let Some(x) = v.as_f64() else {
                return Err(TrapKind::TypeMismatch);
            };
            Ok(Value::F((x as f32) as f64))
        }
        CastKind::BitcastFtoI => {
            let Some(x) = v.as_f64() else {
                return Err(TrapKind::TypeMismatch);
            };
            Ok(Value::I(x.to_bits() as i64))
        }
        CastKind::BitcastItoF => {
            let Some(x) = v.as_i64() else {
                return Err(TrapKind::TypeMismatch);
            };
            Ok(Value::F(f64::from_bits(x as u64)))
        }
    }
}

fn eval_intrinsic(intrinsic: Intrinsic, args: &[Value]) -> Result<Value, TrapKind> {
    let get = |i: usize| -> Result<f64, TrapKind> {
        args.get(i)
            .and_then(|v| v.as_f64())
            .ok_or(TrapKind::TypeMismatch)
    };
    let r = match intrinsic {
        Intrinsic::Sqrt => get(0)?.sqrt(),
        Intrinsic::Fabs => get(0)?.abs(),
        Intrinsic::Pow => get(0)?.powf(get(1)?),
        Intrinsic::Exp => get(0)?.exp(),
        Intrinsic::Log => get(0)?.ln(),
        Intrinsic::Cos => get(0)?.cos(),
        Intrinsic::Sin => get(0)?.sin(),
    };
    Ok(Value::F(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftkr_ir::prelude::*;
    use ftkr_ir::Global;

    /// sum = 0; for i in 0..10 { sum += i }; store to global; output sum.
    fn sum_module() -> Module {
        let mut m = Module::new("sum");
        let g = m.add_global(Global::zeroed_i64("sum", 1));
        let mut b = FunctionBuilder::new("main");
        let acc = b.alloca("acc", 1);
        let zero = b.const_i64(0);
        b.store(acc, zero);
        let ten = b.const_i64(10);
        b.main_for("main_loop", zero, ten, |b, i| {
            let cur = b.load(acc);
            let next = b.add(cur, i);
            b.store(acc, next);
        });
        let total = b.load(acc);
        let gaddr = b.global_addr(g);
        b.store(gaddr, total);
        b.output(total, OutputFormat::Integer);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn sum_program_computes_45() {
        let r = Vm::new(VmConfig::default()).run(&sum_module()).unwrap();
        assert!(r.outcome.is_completed());
        assert_eq!(r.global_i64("sum").unwrap(), vec![45]);
        assert_eq!(r.outputs.records[0].text, "45");
        assert!(r.trace.is_none());
    }

    #[test]
    fn tracing_records_every_dynamic_instruction() {
        let r = Vm::new(VmConfig::tracing()).run(&sum_module()).unwrap();
        let trace = r.trace.unwrap();
        assert_eq!(trace.len() as u64, r.steps);
        assert_eq!(trace.base_step(), 0);
        // 10 iterations => 10 LoopIter markers.
        let iters = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::LoopIter { .. }))
            .count();
        assert_eq!(iters, 10);
        // Every store event writes a memory location.
        assert!(trace
            .iter_views()
            .filter(|(_, v)| matches!(v.event().kind, EventKind::Store))
            .all(|(_, v)| v.written_location().map(|l| l.is_mem()).unwrap_or(false)));
        // The operand pool is exactly covered by the event spans.
        let span_sum: usize = trace.events.iter().map(|e| e.num_reads()).sum();
        assert_eq!(span_sum, trace.num_operands());
    }

    #[test]
    fn presized_tracing_produces_the_same_trace() {
        let module = sum_module();
        let untraced = Vm::new(VmConfig::default()).run(&module).unwrap();
        let plain = Vm::new(VmConfig::tracing()).run(&module).unwrap();
        let sized = Vm::new(VmConfig::tracing_sized(untraced.steps))
            .run(&module)
            .unwrap();
        let a = plain.trace.unwrap();
        let b = sized.trace.unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn region_scoped_tracing_matches_the_full_trace_window() {
        let module = sum_module();
        let full = Vm::new(VmConfig::tracing())
            .run(&module)
            .unwrap()
            .trace
            .unwrap();
        let (start, end) = (5u64, 25u64);
        let scoped = Vm::new(VmConfig::tracing_region(start, end))
            .run(&module)
            .unwrap()
            .trace
            .unwrap();
        assert_eq!(scoped.base_step(), start);
        assert_eq!(scoped.len() as u64, end - start);
        // Every windowed event resolves to the same instruction, locations
        // and values as the corresponding event of the full trace.
        for i in 0..scoped.len() {
            let s = scoped.resolved(i);
            let f = full.resolved(start as usize + i);
            assert_eq!(s, f, "event {i} differs");
        }
    }

    #[test]
    fn region_scoped_tracing_resolves_arguments_of_outer_frames() {
        // A function call made *before* the window starts must still resolve
        // argument reads inside the window.
        let mut m = Module::new("m");
        let mut callee = FunctionBuilder::with_args("work", 1);
        let x = callee.arg(0);
        let mut last = x;
        for _ in 0..8 {
            last = callee.fadd(last, x);
        }
        callee.ret(Some(last));
        m.add_function(callee.finish());
        let mut main = FunctionBuilder::new("main");
        let three = main.const_f64(3.0);
        let r = main.call("work", vec![three]);
        main.output(r, OutputFormat::Full);
        main.ret(None);
        m.add_function(main.finish());

        let full = Vm::new(VmConfig::tracing()).run(&m).unwrap().trace.unwrap();
        let scoped = Vm::new(VmConfig::tracing_region(3, 8))
            .run(&m)
            .unwrap()
            .trace
            .unwrap();
        for i in 0..scoped.len() {
            assert_eq!(scoped.resolved(i), full.resolved(3 + i));
        }
        // Argument reads outside the window must not leak orphan entries
        // into the operand pool: the pool is exactly the event spans.
        let span_sum: usize = scoped.events.iter().map(|e| e.num_reads()).sum();
        assert_eq!(span_sum, scoped.num_operands());
    }

    #[test]
    fn function_calls_return_values_and_release_allocas() {
        let mut m = Module::new("m");
        let mut callee = FunctionBuilder::with_args("square", 1);
        let x = callee.arg(0);
        let sq = callee.fmul(x, x);
        let tmp = callee.alloca("tmp", 16);
        callee.store(tmp, sq);
        let back = callee.load(tmp);
        callee.ret(Some(back));
        m.add_function(callee.finish());

        let mut main = FunctionBuilder::new("main");
        let three = main.const_f64(3.0);
        let nine = main.call("square", vec![three]);
        main.output(nine, OutputFormat::Full);
        main.ret(None);
        m.add_function(main.finish());

        let r = Vm::new(VmConfig::default()).run(&m).unwrap();
        assert!(r.outcome.is_completed());
        assert_eq!(r.outputs.records[0].value.as_f64().unwrap(), 9.0);
        // The alloca made inside `square` is released: only globals remain.
        assert_eq!(r.memory.valid_len(), r.memory.globals_len());
    }

    #[test]
    fn division_by_zero_traps() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main");
        let one = b.const_i64(1);
        let zero = b.const_i64(0);
        b.sdiv(one, zero);
        b.ret(None);
        m.add_function(b.finish());
        let r = Vm::new(VmConfig::default()).run(&m).unwrap();
        assert_eq!(r.outcome, RunOutcome::Trapped(TrapKind::DivisionByZero));
    }

    #[test]
    fn out_of_bounds_store_traps() {
        let mut m = Module::new("m");
        m.add_global(Global::zeroed_f64("g", 2));
        let mut b = FunctionBuilder::new("main");
        let gaddr = b.global_addr(GlobalId(0));
        let idx = b.const_i64(100);
        let v = b.const_f64(1.0);
        b.store_idx(gaddr, idx, v);
        b.ret(None);
        m.add_function(b.finish());
        let r = Vm::new(VmConfig::default()).run(&m).unwrap();
        assert_eq!(r.outcome, RunOutcome::Trapped(TrapKind::OutOfBounds));
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main");
        let one = b.const_i64(1);
        b.while_loop(
            "forever",
            LoopKind::Main,
            |_b| one,
            |b| {
                b.add(one, one);
            },
        );
        b.ret(None);
        m.add_function(b.finish());
        let config = VmConfig {
            max_steps: 10_000,
            ..Default::default()
        };
        let r = Vm::new(config).run(&m).unwrap();
        assert_eq!(r.outcome, RunOutcome::Trapped(TrapKind::StepLimit));
    }

    #[test]
    fn result_fault_changes_the_computation() {
        let module = sum_module();
        // Find a dynamic add instruction in a fault-free traced run.
        let clean = Vm::new(VmConfig::tracing()).run(&module).unwrap();
        let trace = clean.trace.unwrap();
        let (step, _) = trace
            .iter()
            .find(|(_, e)| matches!(e.kind, EventKind::Bin(BinKind::Add)))
            .expect("sum program performs additions");
        let fault = FaultSpec::in_result(step as u64, 5);
        let faulty = Vm::new(VmConfig::with_fault(fault)).run(&module).unwrap();
        assert!(faulty.outcome.is_completed());
        assert_ne!(faulty.global_i64("sum").unwrap(), vec![45]);
    }

    #[test]
    fn memory_fault_at_step_zero_corrupts_initial_global()  {
        let module = sum_module();
        // Global `sum` occupies cell 0; flipping bit 3 before any instruction
        // gives it the value 8, but the program overwrites it => final value
        // is still 45 (the paper's Data Overwriting pattern).
        let fault = FaultSpec::in_memory(0, 0, 3);
        let r = Vm::new(VmConfig::with_fault(fault)).run(&module).unwrap();
        assert!(r.outcome.is_completed());
        assert_eq!(r.global_i64("sum").unwrap(), vec![45]);
    }

    #[test]
    fn faulty_and_clean_runs_have_identical_step_counts_when_completed() {
        let module = sum_module();
        let clean = Vm::new(VmConfig::default()).run(&module).unwrap();
        // A fault in a value that does not steer control flow keeps the step
        // count identical, which is what makes dynamic indices transferable
        // between runs.
        let fault = FaultSpec::in_result(20, 1);
        let faulty = Vm::new(VmConfig::with_fault(fault)).run(&module).unwrap();
        if faulty.outcome.is_completed() {
            assert_eq!(clean.steps, faulty.steps);
        }
    }

    #[test]
    fn run_function_with_args() {
        let mut m = Module::new("m");
        let mut f = FunctionBuilder::with_args("axpy", 2);
        let a = f.arg(0);
        let x = f.arg(1);
        let r = f.fmul(a, x);
        f.ret(Some(r));
        m.add_function(f.finish());
        let res = Vm::new(VmConfig::default())
            .run_function(&m, "axpy", vec![Value::F(2.0), Value::F(4.0)])
            .unwrap();
        assert!(res.outcome.is_completed());
    }

    #[test]
    fn intrinsics_evaluate() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main");
        let four = b.const_f64(4.0);
        let s = b.sqrt(four);
        b.output(s, OutputFormat::Full);
        let neg = b.const_f64(-3.5);
        let abs = b.fabs(neg);
        b.output(abs, OutputFormat::Full);
        let p = b.pow(b.const_f64(2.0), b.const_f64(10.0));
        b.output(p, OutputFormat::Full);
        b.ret(None);
        m.add_function(b.finish());
        let r = Vm::new(VmConfig::default()).run(&m).unwrap();
        let vals: Vec<f64> = r.outputs.values().iter().map(|v| v.as_f64().unwrap()).collect();
        assert_eq!(vals, vec![2.0, 3.5, 1024.0]);
    }

    #[test]
    fn verification_error_is_propagated() {
        let m = Module::new("empty");
        assert!(Vm::new(VmConfig::default()).run(&m).is_err());
    }

    /// A visitor that re-materializes the streamed events, for equivalence
    /// checks against ordinary tracing.
    #[derive(Default)]
    struct Rebuild {
        events: Vec<crate::ResolvedEvent>,
        steps: Vec<u64>,
        outcome: Option<RunOutcome>,
    }

    impl crate::TraceVisitor for Rebuild {
        fn on_event(&mut self, ctx: &crate::EventCtx<'_>) {
            self.steps.push(ctx.step);
            self.events.push(crate::ResolvedEvent {
                func: ctx.event.func,
                frame: ctx.event.frame,
                inst: ctx.event.inst,
                line: ctx.event.line,
                kind: ctx.event.kind.clone(),
                reads: ctx
                    .reads
                    .iter()
                    .map(|&(id, v)| (ctx.location(id), v))
                    .collect(),
                write: ctx.event.write.map(|(id, v)| (ctx.location(id), v)),
            });
        }
        fn on_finish(&mut self, end: &crate::WalkEnd<'_>) {
            self.outcome = end.outcome;
        }
    }

    #[test]
    fn streaming_visitors_see_exactly_the_materialized_trace() {
        let module = sum_module();
        let traced = Vm::new(VmConfig::tracing()).run(&module).unwrap();
        let trace = traced.trace.unwrap();

        let mut rebuild = Rebuild::default();
        let streamed = Vm::new(VmConfig::default())
            .run_with_visitors(&module, &mut [&mut rebuild])
            .unwrap();

        assert!(streamed.trace.is_none(), "streaming must not materialize");
        assert_eq!(streamed.steps, traced.steps);
        assert_eq!(rebuild.outcome, Some(RunOutcome::Completed));
        assert_eq!(rebuild.events.len(), trace.len());
        for (i, got) in rebuild.events.iter().enumerate() {
            assert_eq!(got, &trace.resolved(i), "event {i} differs");
            assert_eq!(rebuild.steps[i], i as u64);
        }
        // The memory image and outputs match an untraced run's.
        assert_eq!(streamed.global_i64("sum").unwrap(), vec![45]);
    }

    #[test]
    fn streaming_respects_faults_and_scope_windows() {
        let module = sum_module();
        let fault = FaultSpec::in_result(20, 1);
        let traced = Vm::new(VmConfig::tracing_with_fault(fault))
            .run(&module)
            .unwrap();
        let trace = traced.trace.unwrap();

        let config = VmConfig {
            fault: Some(fault),
            trace_scope: TraceScope::Window { start: 5, end: 30 },
            ..VmConfig::default()
        };
        let mut rebuild = Rebuild::default();
        Vm::new(config)
            .run_with_visitors(&module, &mut [&mut rebuild])
            .unwrap();
        assert_eq!(rebuild.events.len(), 25);
        for (i, got) in rebuild.events.iter().enumerate() {
            assert_eq!(got, &trace.resolved(5 + i), "window event {i} differs");
            assert_eq!(rebuild.steps[i], 5 + i as u64);
        }
    }

    #[test]
    fn streaming_reports_traps_through_on_finish() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main");
        let one = b.const_i64(1);
        let zero = b.const_i64(0);
        b.sdiv(one, zero);
        b.ret(None);
        m.add_function(b.finish());
        let mut rebuild = Rebuild::default();
        let r = Vm::new(VmConfig::default())
            .run_with_visitors(&m, &mut [&mut rebuild])
            .unwrap();
        assert_eq!(r.outcome, RunOutcome::Trapped(TrapKind::DivisionByZero));
        assert_eq!(
            rebuild.outcome,
            Some(RunOutcome::Trapped(TrapKind::DivisionByZero))
        );
        // The trapping instruction itself records no event (constants are
        // operands, so the division is the very first instruction).
        assert_eq!(rebuild.events.len(), 0);
    }

    // -- snapshot/restore --------------------------------------------------

    /// The call module of `function_calls_return_values_and_release_allocas`:
    /// steps 1..=5 execute inside the `square` frame.
    fn call_module() -> Module {
        let mut m = Module::new("m");
        let mut callee = FunctionBuilder::with_args("square", 1);
        let x = callee.arg(0);
        let sq = callee.fmul(x, x);
        let tmp = callee.alloca("tmp", 16);
        callee.store(tmp, sq);
        let back = callee.load(tmp);
        callee.ret(Some(back));
        m.add_function(callee.finish());
        let mut main = FunctionBuilder::new("main");
        let three = main.const_f64(3.0);
        let nine = main.call("square", vec![three]);
        main.output(nine, OutputFormat::Full);
        main.ret(None);
        m.add_function(main.finish());
        m
    }

    #[test]
    fn snapshot_at_step_zero_resumes_the_whole_run() {
        let module = sum_module();
        let vm = Vm::new(VmConfig::default());
        let cold = vm.run(&module).unwrap();
        let snap = vm.snapshot_at(&module, 0).unwrap().expect("step 0 exists");
        assert_eq!(snap.step(), 0);
        assert_eq!(snap.events_emitted(), 0);
        assert_eq!(snap.frame_depth(), 1, "entry frame is pushed");
        let resumed = vm.resume_from(&module, &snap).unwrap();
        assert_eq!(resumed, cold);
    }

    #[test]
    fn snapshot_at_the_final_step_executes_one_instruction() {
        let module = sum_module();
        let vm = Vm::new(VmConfig::default());
        let cold = vm.run(&module).unwrap();
        let last = cold.steps - 1;
        let snap = vm
            .snapshot_at(&module, last)
            .unwrap()
            .expect("final step exists");
        assert_eq!(snap.step(), last);
        let resumed = vm.resume_from(&module, &snap).unwrap();
        assert_eq!(resumed, cold);
        // One past the final step: the program completes first.
        assert!(vm.snapshot_at(&module, cold.steps).unwrap().is_none());
        assert!(vm.snapshot_at(&module, u64::MAX).unwrap().is_none());
    }

    #[test]
    fn snapshot_inside_a_callee_frame_restores_the_frame_stack() {
        let module = call_module();
        let vm = Vm::new(VmConfig::default());
        let cold = vm.run(&module).unwrap();
        // Step 3 is the callee's store: two live frames, one live alloca.
        let snap = vm.snapshot_at(&module, 3).unwrap().expect("mid-run step");
        assert_eq!(snap.frame_depth(), 2, "snapshot taken inside the callee");
        assert!(
            snap.memory_cells() > 0,
            "the callee's alloca is live at the fork point"
        );
        let resumed = vm.resume_from(&module, &snap).unwrap();
        assert_eq!(resumed, cold);
        // The callee's alloca was released on return, as in the cold run.
        assert_eq!(resumed.memory.valid_len(), resumed.memory.globals_len());
    }

    #[test]
    fn snapshot_with_skip_markers_streams_the_identical_suffix() {
        let module = sum_module();
        let config = VmConfig::default().without_markers();
        let vm = Vm::new(config);

        let mut cold = Rebuild::default();
        let cold_run = vm.run_with_visitors(&module, &mut [&mut cold]).unwrap();

        let fork = cold_run.steps / 2;
        let snap = vm.snapshot_at(&module, fork).unwrap().expect("mid-run step");
        // Markers are elided from the stream, so the event cursor lags the
        // step counter.
        assert!(snap.events_emitted() < snap.step());

        let mut resumed = Rebuild::default();
        let resumed_run = vm
            .resume_with_visitors(&module, &snap, &mut [&mut resumed])
            .unwrap();
        assert_eq!(resumed_run.outcome, cold_run.outcome);
        assert_eq!(resumed_run.steps, cold_run.steps);
        assert_eq!(resumed_run.outputs, cold_run.outputs);
        assert_eq!(resumed_run.memory, cold_run.memory);

        let skip = snap.events_emitted() as usize;
        assert_eq!(resumed.events, cold.events[skip..]);
        assert_eq!(resumed.steps, cold.steps[skip..]);
    }

    #[test]
    fn resumed_tracing_records_exactly_the_trace_tail() {
        let module = sum_module();
        let full = Vm::new(VmConfig::tracing())
            .run(&module)
            .unwrap()
            .trace
            .unwrap();
        let fork = 17u64;
        let snap = Vm::new(VmConfig::default())
            .snapshot_at(&module, fork)
            .unwrap()
            .expect("mid-run step");
        let resumed = Vm::new(VmConfig::tracing())
            .resume_from(&module, &snap)
            .unwrap()
            .trace
            .unwrap();
        assert_eq!(resumed.base_step(), fork);
        assert_eq!(resumed.len() as u64, full.len() as u64 - fork);
        for i in 0..resumed.len() {
            assert_eq!(
                resumed.resolved(i),
                full.resolved(fork as usize + i),
                "resumed event {i} differs"
            );
        }
    }

    #[test]
    fn double_restore_from_one_snapshot_does_not_leak_state() {
        let module = sum_module();
        let plain = Vm::new(VmConfig::default());
        let cold = plain.run(&module).unwrap();
        let snap = plain.snapshot_at(&module, 10).unwrap().expect("mid-run");

        // First restore runs with a fault that corrupts the accumulator…
        let fault = FaultSpec::in_memory(12, 0, 40);
        let faulty1 = Vm::new(VmConfig::with_fault(fault))
            .resume_from(&module, &snap)
            .unwrap();
        // …the second, fault-free restore must still equal the cold run: the
        // faulty resume must not have mutated the shared snapshot image.
        let clean = plain.resume_from(&module, &snap).unwrap();
        assert_eq!(clean, cold);
        // And a repeated faulty restore reproduces the first bit-for-bit.
        let faulty2 = Vm::new(VmConfig::with_fault(fault))
            .resume_from(&module, &snap)
            .unwrap();
        assert_eq!(faulty1, faulty2);
    }

    #[test]
    fn fault_at_the_fork_step_strikes_identically_to_a_cold_run() {
        let module = sum_module();
        let fork = 20u64;
        let snap = Vm::new(VmConfig::default())
            .snapshot_at(&module, fork)
            .unwrap()
            .expect("mid-run step");
        // Both fault targets, striking exactly at the fork step: a memory
        // fault fires before the first resumed instruction, a result fault
        // applies to it.
        for fault in [
            FaultSpec::in_result(fork, 5),
            FaultSpec::in_memory(fork, 0, 3),
        ] {
            let vm = Vm::new(VmConfig::with_fault(fault));
            let cold = vm.run(&module).unwrap();
            let forked = vm.resume_from(&module, &snap).unwrap();
            assert_eq!(forked, cold, "fault {fault:?}");
        }
    }

    // -- decoded dispatch ---------------------------------------------------

    fn decoded(m: &Module) -> DecodedModule {
        DecodedModule::decode(m)
    }

    #[test]
    fn decoded_run_matches_legacy_untraced_and_traced() {
        for module in [sum_module(), call_module()] {
            let dm = decoded(&module);
            for config in [
                VmConfig::default(),
                VmConfig::tracing(),
                VmConfig::tracing().without_markers(),
                VmConfig::tracing_region(3, 20),
            ] {
                let vm = Vm::new(config);
                let legacy = vm.run(&module).unwrap();
                let dec = vm.run_decoded(&module, &dm).unwrap();
                assert_eq!(dec, legacy, "config {config:?}");
            }
        }
    }

    #[test]
    fn decoded_run_matches_legacy_under_faults() {
        let module = sum_module();
        let dm = decoded(&module);
        let clean_steps = Vm::new(VmConfig::default()).run(&module).unwrap().steps;
        for step in 0..clean_steps {
            for fault in [
                FaultSpec::in_result(step, 7),
                FaultSpec::in_memory(step, 0, 3),
            ] {
                let vm = Vm::new(VmConfig::tracing_with_fault(fault));
                let legacy = vm.run(&module).unwrap();
                let dec = vm.run_decoded(&module, &dm).unwrap();
                assert_eq!(dec, legacy, "fault {fault:?}");
            }
        }
    }

    #[test]
    fn decoded_streaming_matches_legacy_streaming() {
        let module = sum_module();
        let dm = decoded(&module);
        let config = VmConfig::default().without_markers();
        let vm = Vm::new(config);
        let mut a = Rebuild::default();
        let ra = vm.run_with_visitors(&module, &mut [&mut a]).unwrap();
        let mut b = Rebuild::default();
        let rb = vm
            .run_with_visitors_decoded(&module, &dm, &mut [&mut b])
            .unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.events, b.events);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.outcome, b.outcome);
    }

    #[test]
    fn decoded_resume_matches_legacy_resume_at_every_fork_point() {
        let module = sum_module();
        let dm = decoded(&module);
        let plain = Vm::new(VmConfig::default());
        let cold = Vm::new(VmConfig::tracing()).run(&module).unwrap();
        // Every fork point, including ones that land between the two halves
        // of a fused compare-branch pair.
        for fork in 0..cold.steps {
            let snap = plain.snapshot_at(&module, fork).unwrap().expect("mid-run");
            let vm = Vm::new(VmConfig::tracing());
            let legacy = vm.resume_from(&module, &snap).unwrap();
            let dec = vm.resume_from_decoded(&module, &dm, &snap).unwrap();
            assert_eq!(dec, legacy, "fork {fork}");
        }
    }

    #[test]
    fn decoded_resume_with_fault_at_fused_branch_half() {
        let module = sum_module();
        let dm = decoded(&module);
        let plain = Vm::new(VmConfig::default());
        let cold = plain.run(&module).unwrap();
        for fork in 0..cold.steps {
            for fault in [
                FaultSpec::in_result(fork, 5),
                FaultSpec::in_memory(fork, 0, 3),
            ] {
                let snap = plain.snapshot_at(&module, fork).unwrap().expect("mid-run");
                let vm = Vm::new(VmConfig::with_fault(fault));
                let legacy = vm.resume_from(&module, &snap).unwrap();
                let dec = vm.resume_from_decoded(&module, &dm, &snap).unwrap();
                assert_eq!(dec, legacy, "fork {fork} fault {fault:?}");
            }
        }
    }

    #[test]
    fn decoded_step_limit_stops_identically() {
        let module = sum_module();
        let dm = decoded(&module);
        let total = Vm::new(VmConfig::default()).run(&module).unwrap().steps;
        for limit in 0..=total {
            let config = VmConfig {
                max_steps: limit,
                record_trace: true,
                ..Default::default()
            };
            let vm = Vm::new(config);
            let legacy = vm.run(&module).unwrap();
            let dec = vm.run_decoded(&module, &dm).unwrap();
            assert_eq!(dec, legacy, "limit {limit}");
        }
    }

    #[test]
    fn decoded_traps_match_legacy() {
        // Division by zero mid-program.
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main");
        let one = b.const_i64(1);
        let zero = b.const_i64(0);
        let x = b.add(one, one);
        b.sdiv(x, zero);
        b.ret(None);
        m.add_function(b.finish());
        let dm = decoded(&m);
        let vm = Vm::new(VmConfig::tracing());
        let legacy = vm.run(&m).unwrap();
        let dec = vm.run_decoded(&m, &dm).unwrap();
        assert_eq!(dec, legacy);
        assert_eq!(dec.outcome, RunOutcome::Trapped(TrapKind::DivisionByZero));
    }

    #[test]
    fn skip_markers_elides_markers_but_keeps_steps_derivable() {
        let module = sum_module();
        let full = Vm::new(VmConfig::tracing()).run(&module).unwrap();
        let full_trace = full.trace.unwrap();
        let lean = Vm::new(VmConfig::tracing().without_markers())
            .run(&module)
            .unwrap();
        let lean_trace = lean.trace.unwrap();

        // Same execution, fewer recorded events: exactly the markers moved to
        // the side table.
        assert_eq!(lean.steps, full.steps);
        assert!(lean_trace.markers_elided());
        assert_eq!(
            lean_trace.len() + lean_trace.markers().len(),
            full_trace.len()
        );
        assert_eq!(lean_trace.len(), full_trace.len_without_markers());
        assert!(lean_trace.events.iter().all(|e| !e.kind.is_marker()));

        // Every lean event resolves to the full-trace event at its absolute
        // step, and `step_of` recovers that step exactly.
        for i in 0..lean_trace.len() {
            let step = lean_trace.step_of(i) as usize;
            assert_eq!(lean_trace.resolved(i), full_trace.resolved(step));
        }

        // The side table mirrors the elided markers in order.
        let mut markers = lean_trace.markers().iter();
        for e in &full_trace.events {
            if e.kind.is_marker() {
                let m = markers.next().expect("one record per marker");
                match (&e.kind, m.kind) {
                    (EventKind::LoopBegin { id, .. }, MarkerKind::Begin { id: mid, .. })
                    | (EventKind::LoopEnd { id }, MarkerKind::End { id: mid })
                    | (EventKind::LoopIter { id }, MarkerKind::Iter { id: mid }) => {
                        assert_eq!(*id, mid);
                    }
                    other => panic!("marker kind mismatch: {other:?}"),
                }
            }
        }
        assert!(markers.next().is_none());
    }
}
