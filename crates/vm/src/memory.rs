//! Flat VM memory: globals followed by a downward-growing frame stack area.
//!
//! Addresses are cell indices (one cell = one 8-byte value).  Globals occupy
//! `[0, globals_len)`; `alloca` allocations live in `[globals_len,
//! globals_len + stack_top)` and are released when their frame returns, which
//! is what makes "temporal corrupted locations freed by returning functions"
//! (the KMEANS observation in the paper) visible to the liveness analyses.

use ftkr_ir::global::GlobalInit;
use ftkr_ir::Module;

use crate::value::Value;

/// Result of an address check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The address points outside all currently valid cells.
    OutOfBounds {
        /// Offending address.
        addr: u64,
    },
}

/// Flat memory with a global segment and a stack segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Memory {
    cells: Vec<Value>,
    globals_len: u64,
    stack_top: u64,
    max_cells: u64,
    /// Name, base address and size of every global (for snapshots/reports).
    global_map: Vec<(String, u64, u64)>,
}

impl Memory {
    /// Build memory for a module: lay out the globals and reserve a stack.
    pub fn for_module(module: &Module, max_cells: u64) -> Self {
        let mut cells = Vec::new();
        let mut global_map = Vec::new();
        for g in &module.globals {
            let base = cells.len() as u64;
            match &g.init {
                GlobalInit::ZeroI64 => cells.extend(std::iter::repeat_n(Value::I(0), g.size as usize)),
                GlobalInit::ZeroF64 => cells.extend(std::iter::repeat_n(Value::F(0.0), g.size as usize)),
                GlobalInit::I64(data) => cells.extend(data.iter().map(|&v| Value::I(v))),
                GlobalInit::F64(data) => cells.extend(data.iter().map(|&v| Value::F(v))),
            }
            global_map.push((g.name.clone(), base, g.size as u64));
        }
        let globals_len = cells.len() as u64;
        Memory {
            cells,
            globals_len,
            stack_top: 0,
            max_cells,
            global_map,
        }
    }

    /// Number of cells occupied by globals.
    pub fn globals_len(&self) -> u64 {
        self.globals_len
    }

    /// Current number of valid cells (globals + live stack).
    pub fn valid_len(&self) -> u64 {
        self.globals_len + self.stack_top
    }

    /// Approximate heap footprint of the memory image in bytes (cell slab +
    /// global map).  An estimate over inline struct sizes, for cache
    /// byte-budget accounting.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.cells.len() * size_of::<Value>()
            + self
                .global_map
                .iter()
                .map(|(name, _, _)| name.len() + size_of::<(String, u64, u64)>())
                .sum::<usize>()
    }

    /// Base address and length of a global by name.
    pub fn global_extent(&self, name: &str) -> Option<(u64, u64)> {
        self.global_map
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, base, len)| (*base, *len))
    }

    /// Read the cell at `addr`.
    pub fn load(&self, addr: u64) -> Result<Value, MemError> {
        if addr < self.valid_len() {
            Ok(self.cells[addr as usize])
        } else {
            Err(MemError::OutOfBounds { addr })
        }
    }

    /// Write the cell at `addr`.
    pub fn store(&mut self, addr: u64, value: Value) -> Result<(), MemError> {
        if addr < self.valid_len() {
            self.cells[addr as usize] = value;
            Ok(())
        } else {
            Err(MemError::OutOfBounds { addr })
        }
    }

    /// Allocate `size` cells on the stack; returns the base address or `None`
    /// if the memory limit would be exceeded.
    pub fn alloca(&mut self, size: u64) -> Option<u64> {
        let base = self.valid_len();
        let new_valid = base + size;
        if new_valid > self.max_cells {
            return None;
        }
        if new_valid as usize > self.cells.len() {
            self.cells.resize(new_valid as usize, Value::I(0));
        } else {
            // Reused stack space must not leak values from dead frames.
            for cell in &mut self.cells[base as usize..new_valid as usize] {
                *cell = Value::I(0);
            }
        }
        self.stack_top += size;
        Some(base)
    }

    /// Current stack mark; pass it to [`Memory::release_to`] when the frame
    /// that called [`Memory::alloca`] returns.
    pub fn stack_mark(&self) -> u64 {
        self.stack_top
    }

    /// Release every allocation made after `mark` (frame return).
    pub fn release_to(&mut self, mark: u64) {
        debug_assert!(mark <= self.stack_top);
        self.stack_top = mark;
    }

    /// Copy the contents of a global into a vector of floats (lossy for
    /// integer cells).  Used by application verification phases.
    pub fn read_global_f64(&self, name: &str) -> Option<Vec<f64>> {
        let (base, len) = self.global_extent(name)?;
        Some(
            (base..base + len)
                .map(|a| self.cells[a as usize].to_f64_lossy())
                .collect(),
        )
    }

    /// Copy the contents of a global into a vector of integers (`None` cells
    /// holding floats are truncated).
    pub fn read_global_i64(&self, name: &str) -> Option<Vec<i64>> {
        let (base, len) = self.global_extent(name)?;
        Some(
            (base..base + len)
                .map(|a| match self.cells[a as usize] {
                    Value::I(v) => v,
                    Value::F(v) => v as i64,
                    Value::P(v) => v as i64,
                })
                .collect(),
        )
    }

    /// Raw read without bounds enforcement against the stack top (still
    /// bounded by the backing vector); used by fault injection to corrupt a
    /// cell irrespective of liveness.
    pub fn peek(&self, addr: u64) -> Option<Value> {
        self.cells.get(addr as usize).copied()
    }

    /// Raw write for fault injection; returns false if the cell has never
    /// existed.
    pub fn poke(&mut self, addr: u64, value: Value) -> bool {
        if let Some(cell) = self.cells.get_mut(addr as usize) {
            *cell = value;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftkr_ir::{Global, Module};

    fn module_with_globals() -> Module {
        let mut m = Module::new("m");
        m.add_global(Global::with_f64("u", vec![1.0, 2.0, 3.0]));
        m.add_global(Global::zeroed_i64("keys", 4));
        m
    }

    #[test]
    fn layout_places_globals_consecutively() {
        let mem = Memory::for_module(&module_with_globals(), 1024);
        assert_eq!(mem.globals_len(), 7);
        assert_eq!(mem.global_extent("u"), Some((0, 3)));
        assert_eq!(mem.global_extent("keys"), Some((3, 4)));
        assert_eq!(mem.load(1).unwrap(), Value::F(2.0));
        assert_eq!(mem.load(5).unwrap(), Value::I(0));
    }

    #[test]
    fn oob_access_is_reported() {
        let mut mem = Memory::for_module(&module_with_globals(), 1024);
        assert!(matches!(mem.load(100), Err(MemError::OutOfBounds { .. })));
        assert!(matches!(
            mem.store(100, Value::I(1)),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn alloca_and_release_manage_the_stack() {
        let mut mem = Memory::for_module(&module_with_globals(), 1024);
        let mark = mem.stack_mark();
        let base = mem.alloca(8).unwrap();
        assert_eq!(base, 7);
        mem.store(base + 2, Value::F(9.0)).unwrap();
        assert_eq!(mem.load(base + 2).unwrap(), Value::F(9.0));
        mem.release_to(mark);
        assert!(mem.load(base + 2).is_err());
        // Re-allocating reuses and clears the cells.
        let base2 = mem.alloca(8).unwrap();
        assert_eq!(base2, base);
        assert_eq!(mem.load(base2 + 2).unwrap(), Value::I(0));
    }

    #[test]
    fn alloca_respects_the_memory_limit() {
        let mut mem = Memory::for_module(&module_with_globals(), 16);
        assert!(mem.alloca(8).is_some());
        assert!(mem.alloca(8).is_none());
    }

    #[test]
    fn global_snapshots() {
        let mem = Memory::for_module(&module_with_globals(), 1024);
        assert_eq!(mem.read_global_f64("u").unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(mem.read_global_i64("keys").unwrap(), vec![0, 0, 0, 0]);
        assert!(mem.read_global_f64("missing").is_none());
    }

    #[test]
    fn poke_and_peek_for_fault_injection() {
        let mut mem = Memory::for_module(&module_with_globals(), 1024);
        assert_eq!(mem.peek(0), Some(Value::F(1.0)));
        assert!(mem.poke(0, Value::F(-1.0)));
        assert_eq!(mem.peek(0), Some(Value::F(-1.0)));
        assert!(!mem.poke(10_000, Value::I(0)));
    }
}
