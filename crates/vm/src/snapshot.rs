//! Mid-run VM state snapshots: capture everything a deterministic resumed
//! run needs, cheaply shareable across thousands of forked injections.
//!
//! A fault-injection campaign against a region window `[start, end)` used to
//! re-execute the clean prefix `[0, start)` once **per injection**.  A
//! [`VmSnapshot`] captures the complete interpreter state at a dynamic step —
//! the call-frame stack (block/ip/registers), the [`crate::Memory`] image and
//! its stack mark, the interned [`crate::Location`] tables (per-frame
//! register ids and the address-indexed memory table), the absolute step
//! counter, the streamed-event cursor, and the output accumulator — so
//! [`crate::Vm::resume_from`] / [`crate::Vm::resume_with_visitors`] can fork
//! any number of faulty runs from the fork point without recomputing the
//! prefix.
//!
//! Cloning a `VmSnapshot` is an [`Arc`] bump: the captured image is immutable
//! and shared, and every restore copies the mutable slabs (memory cells,
//! frames, location tables) out of it — copy-on-restore, in the spirit of the
//! wasmtime pooling allocator's reusable instance slabs.  Restores therefore
//! never alias: two runs resumed from one snapshot cannot observe each
//! other's writes, which the double-restore unit tests pin down.
//!
//! What is **not** captured: the recorded event stream.  A resumed run
//! re-records (or re-streams) only the steps it executes; the snapshot's
//! `events_emitted` cursor lets streaming consumers continue their absolute
//! event indexing exactly where a cold run would be, which is what keeps
//! fork-point campaign reports byte-identical to cold-run reports.

use std::sync::Arc;

use crate::interp::Frame;
use crate::location::Location;
use crate::memory::Memory;
use crate::output::ProgramOutput;

/// The captured interpreter state (immutable once built; shared via
/// [`VmSnapshot`]'s `Arc`).
#[derive(Debug)]
pub(crate) struct SnapshotImage {
    /// Absolute dynamic step the snapshot was taken at: the instruction at
    /// this step has **not** executed yet.
    pub(crate) step: u64,
    /// Number of events a streaming run with the capturing configuration has
    /// delivered up to `step` (equals `step` for full-scope, marker-recording
    /// captures; fewer under `skip_markers` or a scope window).
    pub(crate) events_emitted: u64,
    /// Next frame id the interpreter would assign.
    pub(crate) next_frame_id: u32,
    /// Full memory image (globals + live stack + stack mark).
    pub(crate) memory: Memory,
    /// The live call-frame stack, innermost last.
    pub(crate) frames: Vec<Frame>,
    /// Program output accumulated by the prefix.
    pub(crate) outputs: ProgramOutput,
    /// The location table interned by the prefix, in first-touch order.
    pub(crate) locations: Vec<Location>,
    /// The address-indexed memory-cell interning table (`NO_ID` sentinel).
    pub(crate) mem_ids: Vec<u32>,
}

/// A cheap-to-clone snapshot of a run at one dynamic step, produced by
/// [`crate::Vm::snapshot_at`] and consumed by [`crate::Vm::resume_from`] /
/// [`crate::Vm::resume_with_visitors`].
///
/// Clones share one immutable image (an [`Arc`] bump), so a campaign can
/// hand the same snapshot to every parallel worker; each restore copies the
/// mutable state out, never mutating the snapshot itself.
#[derive(Debug, Clone)]
pub struct VmSnapshot {
    inner: Arc<SnapshotImage>,
}

impl VmSnapshot {
    pub(crate) fn new(image: SnapshotImage) -> Self {
        VmSnapshot {
            inner: Arc::new(image),
        }
    }

    pub(crate) fn image(&self) -> &SnapshotImage {
        &self.inner
    }

    /// The dynamic step the snapshot was taken at; the instruction at this
    /// step has not executed yet, so a fault with `at_step` equal to this
    /// step lands correctly in a resumed run.
    pub fn step(&self) -> u64 {
        self.inner.step
    }

    /// Number of events a streaming run with the capturing configuration
    /// delivered before the fork point — the starting `EventCtx::index` of a
    /// resumed streamed run.
    pub fn events_emitted(&self) -> u64 {
        self.inner.events_emitted
    }

    /// Number of locations the prefix interned (the fork point's location
    /// table length).
    pub fn num_locations(&self) -> usize {
        self.inner.locations.len()
    }

    /// Depth of the captured call-frame stack (≥ 1: the entry frame is
    /// always live while the program runs).
    pub fn frame_depth(&self) -> usize {
        self.inner.frames.len()
    }

    /// Number of valid memory cells (globals + live stack) in the captured
    /// image — the dominant term of the snapshot's size.
    pub fn memory_cells(&self) -> u64 {
        self.inner.memory.valid_len()
    }

    /// Approximate heap footprint of the captured image in bytes (memory
    /// slab, frames, location tables).  An estimate over inline struct
    /// sizes, for cache byte-budget accounting; clones share the image, so
    /// the footprint is per snapshot, not per clone.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let img = self.image();
        img.memory.resident_bytes()
            + img.frames.len() * size_of::<Frame>()
            + img.locations.len() * size_of::<Location>()
            + img.mem_ids.len() * size_of::<u32>()
            + size_of::<SnapshotImage>()
    }
}
