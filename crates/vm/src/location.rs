//! Data locations: registers and memory cells.
//!
//! The paper uses *location* to cover "either a register location or a memory
//! location".  Registers are SSA values of a particular dynamic function
//! invocation (the same static register in two invocations of `conj_grad` is
//! two different locations), memory cells are 8-byte slots in the VM's flat
//! address space.

use serde::{Deserialize, Serialize};

use ftkr_ir::{FunctionId, ValueId};

/// A data location that can hold a (possibly corrupted) value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Location {
    /// An SSA register of one dynamic function invocation.
    Reg {
        /// Which function the register belongs to.
        func: FunctionId,
        /// Dynamic invocation number (global call counter).
        frame: u32,
        /// Which instruction defines the register.
        value: ValueId,
    },
    /// One 8-byte cell of VM memory (globals or stack).
    Mem {
        /// Cell address.
        addr: u64,
    },
}

impl Location {
    /// Shorthand constructor for a register location.
    pub fn reg(func: FunctionId, frame: u32, value: ValueId) -> Self {
        Location::Reg { func, frame, value }
    }

    /// Shorthand constructor for a memory location.
    pub fn mem(addr: u64) -> Self {
        Location::Mem { addr }
    }

    /// True for memory locations.
    pub fn is_mem(&self) -> bool {
        matches!(self, Location::Mem { .. })
    }

    /// True for register locations.
    pub fn is_reg(&self) -> bool {
        matches!(self, Location::Reg { .. })
    }

    /// Memory address, if this is a memory location.
    pub fn mem_addr(&self) -> Option<u64> {
        match self {
            Location::Mem { addr } => Some(*addr),
            _ => None,
        }
    }
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Location::Reg { func, frame, value } => {
                write!(f, "r{}#{}:{}", func.0, frame, value)
            }
            Location::Mem { addr } => write!(f, "m[{addr}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let r = Location::reg(FunctionId(1), 7, ValueId(3));
        let m = Location::mem(42);
        assert!(r.is_reg());
        assert!(!r.is_mem());
        assert!(m.is_mem());
        assert_eq!(m.mem_addr(), Some(42));
        assert_eq!(r.mem_addr(), None);
        assert_eq!(format!("{m}"), "m[42]");
        assert!(format!("{r}").contains("%3"));
    }

    #[test]
    fn locations_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(Location::mem(1));
        s.insert(Location::mem(1));
        s.insert(Location::reg(FunctionId(0), 0, ValueId(0)));
        assert_eq!(s.len(), 2);
    }
}
