//! `ftkr-vm` — interpreter, dynamic tracer and fault-injection hooks.
//!
//! This crate plays the role that LLVM + LLVM-Tracer + FlipIt play in the
//! original FlipTracker implementation: it executes `ftkr-ir` programs,
//! records a *dynamic instruction trace* (opcode, operand locations and
//! values, result location and value, source line, loop/region markers), and
//! can flip a single bit of a chosen dynamic value or memory cell to mimic a
//! transient soft error reaching application state.
//!
//! The three fault manifestations of the paper map onto [`RunOutcome`]:
//! a run either completes (and is then judged by the application's own
//! verification phase, yielding *Verification Success* or *Verification
//! Failed*), or it traps/hangs, which corresponds to *Crashed*.
//!
//! ```
//! use ftkr_ir::prelude::*;
//! use ftkr_vm::{Vm, VmConfig};
//!
//! let mut module = Module::new("demo");
//! let mut f = FunctionBuilder::new("main");
//! let one = f.const_f64(1.0);
//! let two = f.const_f64(2.0);
//! let x = f.fadd(one, two);
//! f.output(x, OutputFormat::Full);
//! f.ret(None);
//! module.add_function(f.finish());
//!
//! let result = Vm::new(VmConfig::default()).run(&module).unwrap();
//! assert!(result.outcome.is_completed());
//! assert_eq!(result.outputs.records[0].value.as_f64().unwrap(), 3.0);
//! ```

pub mod fault;
pub mod interp;
pub mod location;
pub mod memory;
pub mod output;
pub mod snapshot;
pub mod trace;
pub mod value;
pub mod visitor;

pub use fault::{FaultSpec, FaultTarget};
pub use ftkr_ir::decode::DecodedModule;
pub use interp::{RunOutcome, RunResult, TraceOpts, TraceScope, TrapKind, Vm, VmConfig};
pub use location::Location;
pub use memory::Memory;
pub use output::{OutputRecord, ProgramOutput};
pub use snapshot::VmSnapshot;
pub use trace::{
    EventView, EventKind, LocationId, MarkerKind, MarkerRecord, ReadSpan, ResolvedEvent, Trace,
    TraceBuilder, TraceEvent, TraceSlice,
};
pub use value::Value;
pub use visitor::{EventCtx, EventCursor, TraceVisitor, WalkEnd};
