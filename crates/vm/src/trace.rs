//! Dynamic instruction traces.
//!
//! A [`Trace`] is the central artifact of FlipTracker: every analysis
//! (code-region partitioning, DDDG construction, ACL tables, pattern
//! detection) consumes it.  Each [`TraceEvent`] records what the original
//! LLVM-Tracer stores per instruction — instruction identity, source line,
//! operand locations and values, and the location/value written — plus the
//! loop markers that drive the paper's code-region model.

use serde::{Deserialize, Serialize};

use ftkr_ir::{BinKind, CastKind, CmpKind, FunctionId, LoopId, LoopKind, OutputFormat, ValueId};

use crate::location::Location;
use crate::value::Value;

/// Dynamic classification of an executed instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Binary arithmetic/logical operation.
    Bin(BinKind),
    /// Comparison; `taken` is the boolean result.
    Cmp {
        /// Predicate.
        kind: CmpKind,
        /// Floating comparison?
        float: bool,
        /// Result of the comparison.
        result: bool,
    },
    /// Conversion.
    Cast(CastKind),
    /// Branch-free select.
    Select,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Stack allocation; `base`/`size` give the cells it created.
    Alloca {
        /// First cell of the allocation.
        base: u64,
        /// Number of cells.
        size: u64,
    },
    /// Pointer arithmetic.
    Gep,
    /// Call to another function of the module.
    Call {
        /// Callee function.
        callee: FunctionId,
    },
    /// Math intrinsic call.
    Intrinsic,
    /// Function return.
    Ret,
    /// Unconditional branch.
    Br,
    /// Conditional branch; `taken` tells which way it went (control-flow
    /// divergence between faulty and fault-free runs is detected from this).
    CondBr {
        /// True if the "then" target was taken.
        taken: bool,
    },
    /// Program output (printf model).
    Output {
        /// Formatting applied.
        format: OutputFormat,
    },
    /// Entry into a loop (one per loop execution, not per iteration).
    LoopBegin {
        /// Static loop id.
        id: LoopId,
        /// Static nesting depth.
        depth: u32,
        /// Loop classification.
        kind: LoopKind,
    },
    /// Exit from a loop.
    LoopEnd {
        /// Static loop id.
        id: LoopId,
    },
    /// Start of one loop iteration.
    LoopIter {
        /// Static loop id.
        id: LoopId,
    },
    /// No-op.
    Nop,
}

impl EventKind {
    /// True for the loop marker events.
    pub fn is_marker(&self) -> bool {
        matches!(
            self,
            EventKind::LoopBegin { .. } | EventKind::LoopEnd { .. } | EventKind::LoopIter { .. }
        )
    }
}

/// One executed instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Function the instruction belongs to.
    pub func: FunctionId,
    /// Dynamic invocation number of that function (frame id).
    pub frame: u32,
    /// Static instruction id within the function.
    pub inst: ValueId,
    /// Source line recorded for the instruction.
    pub line: u32,
    /// Dynamic classification.
    pub kind: EventKind,
    /// Locations read by the instruction together with the values observed.
    pub reads: Vec<(Location, Value)>,
    /// Location written (register defined or memory cell stored) and the
    /// value written, if any.
    pub write: Option<(Location, Value)>,
}

impl TraceEvent {
    /// The value written, if any.
    pub fn written_value(&self) -> Option<Value> {
        self.write.map(|(_, v)| v)
    }

    /// The location written, if any.
    pub fn written_location(&self) -> Option<Location> {
        self.write.map(|(l, _)| l)
    }

    /// True if the event reads the given location.
    pub fn reads_location(&self, loc: &Location) -> bool {
        self.reads.iter().any(|(l, _)| l == loc)
    }
}

/// A dynamic instruction trace (optionally produced by a run).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Executed instructions, in order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    /// Number of dynamic instructions (including marker events).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no instruction was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of dynamic instructions excluding loop markers — the paper's
    /// "#instr in an iteration" excludes instrumentation artifacts.
    pub fn len_without_markers(&self) -> usize {
        self.events.iter().filter(|e| !e.kind.is_marker()).count()
    }

    /// Iterate over `(dynamic index, event)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &TraceEvent)> {
        self.events.iter().enumerate()
    }

    /// Index of the first event where this trace and `other` differ in the
    /// value written (bitwise), i.e. where an injected error first becomes
    /// architecturally visible.  `None` when the traces agree everywhere they
    /// overlap.
    pub fn first_divergence(&self, other: &Trace) -> Option<usize> {
        let n = self.events.len().min(other.events.len());
        for i in 0..n {
            let a = &self.events[i];
            let b = &other.events[i];
            let values_differ = match (a.write, b.write) {
                (Some((_, va)), Some((_, vb))) => !va.bit_eq(vb),
                (None, None) => false,
                _ => true,
            };
            if values_differ || a.inst != b.inst || a.func != b.func {
                return Some(i);
            }
        }
        if self.events.len() != other.events.len() {
            Some(n)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(val: f64) -> TraceEvent {
        TraceEvent {
            func: FunctionId(0),
            frame: 0,
            inst: ValueId(0),
            line: 1,
            kind: EventKind::Bin(BinKind::FAdd),
            reads: vec![(Location::mem(0), Value::F(1.0))],
            write: Some((Location::mem(1), Value::F(val))),
        }
    }

    #[test]
    fn trace_counting_skips_markers() {
        let mut t = Trace::new();
        t.events.push(event(1.0));
        t.events.push(TraceEvent {
            kind: EventKind::LoopIter { id: LoopId(0) },
            reads: vec![],
            write: None,
            ..event(0.0)
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.len_without_markers(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn divergence_detection() {
        let mut a = Trace::new();
        let mut b = Trace::new();
        a.events.push(event(1.0));
        b.events.push(event(1.0));
        assert_eq!(a.first_divergence(&b), None);
        a.events.push(event(2.0));
        b.events.push(event(2.5));
        assert_eq!(a.first_divergence(&b), Some(1));
        // Length mismatch counts as divergence at the shorter length.
        b.events.push(event(3.0));
        assert_eq!(a.first_divergence(&b), Some(1));
    }

    #[test]
    fn event_accessors() {
        let e = event(4.0);
        assert_eq!(e.written_value(), Some(Value::F(4.0)));
        assert_eq!(e.written_location(), Some(Location::mem(1)));
        assert!(e.reads_location(&Location::mem(0)));
        assert!(!e.reads_location(&Location::mem(9)));
        assert!(!e.kind.is_marker());
    }
}
