//! Dynamic instruction traces — compact, structure-of-arrays layout.
//!
//! A [`Trace`] is the central artifact of FlipTracker: every analysis
//! (code-region partitioning, DDDG construction, ACL tables, pattern
//! detection) consumes it.  Each [`TraceEvent`] records what the original
//! LLVM-Tracer stores per instruction — instruction identity, source line,
//! operand locations and values, and the location/value written — plus the
//! loop markers that drive the paper's code-region model.
//!
//! # Compact layout
//!
//! Traces routinely hold millions of events, so the representation is tuned
//! for bulk construction and scanning rather than per-event convenience:
//!
//! * every [`Location`] that appears in a trace is *interned* once and
//!   referred to by a dense [`LocationId`] (a `u32`), so events carry 4-byte
//!   ids instead of 24-byte `Location` enums and analyses can replace hash
//!   maps keyed by `Location` with flat vectors indexed by id;
//! * operand reads live in one shared *operand pool* owned by the trace; an
//!   event stores a `(offset, len)` [`ReadSpan`] into that pool instead of
//!   owning a per-event `Vec`, so recording a trace performs O(1) vector
//!   allocations instead of one per dynamic instruction.
//!
//! [`EventView`] and [`TraceSlice`] resolve ids back to full [`Location`]s
//! for consumers that need them; [`ResolvedEvent`] and [`TraceBuilder`]
//! provide the location-based construction API used by tests and tools.

use serde::{Deserialize, Serialize};

use ftkr_ir::{BinKind, CastKind, CmpKind, FunctionId, LoopId, LoopKind, OutputFormat, ValueId};

use crate::location::Location;
use crate::value::Value;

/// Dense index of an interned [`Location`] within one [`Trace`].
///
/// Ids are only meaningful relative to the trace that interned them: the same
/// location generally receives different ids in the clean and the faulty
/// trace of one injection experiment.  Resolve with [`Trace::location`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LocationId(pub u32);

impl LocationId {
    /// The raw index into the trace's location table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LocationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Span of one event's operand reads inside the trace's shared operand pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadSpan {
    /// First pool entry belonging to the event.
    pub offset: u32,
    /// Number of pool entries.
    pub len: u32,
}

impl ReadSpan {
    /// Empty span (no operands read).
    pub fn empty() -> Self {
        ReadSpan::default()
    }

    /// The pool range covered by the span.
    pub fn range(self) -> std::ops::Range<usize> {
        let start = self.offset as usize;
        start..start + self.len as usize
    }
}

/// Dynamic classification of an executed instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Binary arithmetic/logical operation.
    Bin(BinKind),
    /// Comparison; `taken` is the boolean result.
    Cmp {
        /// Predicate.
        kind: CmpKind,
        /// Floating comparison?
        float: bool,
        /// Result of the comparison.
        result: bool,
    },
    /// Conversion.
    Cast(CastKind),
    /// Branch-free select.
    Select,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Stack allocation; `base`/`size` give the cells it created.
    Alloca {
        /// First cell of the allocation.
        base: u64,
        /// Number of cells.
        size: u64,
    },
    /// Pointer arithmetic.
    Gep,
    /// Call to another function of the module.
    Call {
        /// Callee function.
        callee: FunctionId,
    },
    /// Math intrinsic call.
    Intrinsic,
    /// Function return.
    Ret,
    /// Unconditional branch.
    Br,
    /// Conditional branch; `taken` tells which way it went (control-flow
    /// divergence between faulty and fault-free runs is detected from this).
    CondBr {
        /// True if the "then" target was taken.
        taken: bool,
    },
    /// Program output (printf model).
    Output {
        /// Formatting applied.
        format: OutputFormat,
    },
    /// Entry into a loop (one per loop execution, not per iteration).
    LoopBegin {
        /// Static loop id.
        id: LoopId,
        /// Static nesting depth.
        depth: u32,
        /// Loop classification.
        kind: LoopKind,
    },
    /// Exit from a loop.
    LoopEnd {
        /// Static loop id.
        id: LoopId,
    },
    /// Start of one loop iteration.
    LoopIter {
        /// Static loop id.
        id: LoopId,
    },
    /// No-op.
    Nop,
}

impl EventKind {
    /// True for the loop marker events.
    pub fn is_marker(&self) -> bool {
        matches!(
            self,
            EventKind::LoopBegin { .. } | EventKind::LoopEnd { .. } | EventKind::LoopIter { .. }
        )
    }
}

/// Which loop marker an elided [`MarkerRecord`] stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MarkerKind {
    /// Entry into a loop (one per loop execution).
    Begin {
        /// Static loop id.
        id: LoopId,
        /// Static nesting depth.
        depth: u32,
        /// Loop classification.
        kind: LoopKind,
    },
    /// Exit from a loop.
    End {
        /// Static loop id.
        id: LoopId,
    },
    /// Start of one loop iteration.
    Iter {
        /// Static loop id.
        id: LoopId,
    },
}

/// One loop marker elided from the event stream by
/// `TraceOpts::skip_markers`: recorded out-of-band so the code-region
/// partitioner can still reconstruct region boundaries (falling back to the
/// module's static loop tables for names and lines) and so absolute dynamic
/// steps stay derivable ([`Trace::step_of`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarkerRecord {
    /// Number of events recorded before the marker executed — i.e. the index
    /// (into `Trace::events`) of the first event *after* the marker.
    pub at_event: u32,
    /// Function the marker instruction belongs to.
    pub func: FunctionId,
    /// Dynamic invocation number of that function.
    pub frame: u32,
    /// Which marker.
    pub kind: MarkerKind,
}

/// One executed instruction, in the compact encoding.
///
/// Operand reads are stored as a [`ReadSpan`] into the owning trace's operand
/// pool ([`Trace::reads_of`] resolves it); the written location is a dense
/// [`LocationId`] ([`Trace::location`] resolves it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Function the instruction belongs to.
    pub func: FunctionId,
    /// Dynamic invocation number of that function (frame id).
    pub frame: u32,
    /// Static instruction id within the function.
    pub inst: ValueId,
    /// Source line recorded for the instruction.
    pub line: u32,
    /// Dynamic classification.
    pub kind: EventKind,
    /// Span of operand reads inside the trace's operand pool.
    pub reads: ReadSpan,
    /// Location written (register defined or memory cell stored) and the
    /// value written, if any.
    pub write: Option<(LocationId, Value)>,
}

impl TraceEvent {
    /// The value written, if any.
    pub fn written_value(&self) -> Option<Value> {
        self.write.map(|(_, v)| v)
    }

    /// The id of the location written, if any (resolve with
    /// [`Trace::location`]).
    pub fn written_id(&self) -> Option<LocationId> {
        self.write.map(|(l, _)| l)
    }

    /// Number of operands the instruction read.
    pub fn num_reads(&self) -> usize {
        self.reads.len as usize
    }
}

/// One executed instruction with every location fully resolved — the
/// construction and inspection form of [`TraceEvent`], used by tests, tools
/// and the retained reference implementations.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedEvent {
    /// Function the instruction belongs to.
    pub func: FunctionId,
    /// Dynamic invocation number of that function (frame id).
    pub frame: u32,
    /// Static instruction id within the function.
    pub inst: ValueId,
    /// Source line recorded for the instruction.
    pub line: u32,
    /// Dynamic classification.
    pub kind: EventKind,
    /// Locations read by the instruction together with the values observed.
    pub reads: Vec<(Location, Value)>,
    /// Location and value written, if any.
    pub write: Option<(Location, Value)>,
}

/// A dynamic instruction trace (optionally produced by a run).
///
/// `events` is public for indexed access; the operand pool and the location
/// table are reached through [`Trace::reads_of`], [`Trace::location`] and
/// friends so their invariants (spans in bounds, ids dense) hold by
/// construction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Executed instructions, in order.
    pub events: Vec<TraceEvent>,
    /// Shared operand pool; each event's `reads` span indexes into it.
    pub(crate) pool: Vec<(LocationId, Value)>,
    /// Interned locations; `LocationId(i)` names `locations[i]`.
    pub(crate) locations: Vec<Location>,
    /// Dynamic step of the first recorded event (non-zero for region-scoped
    /// traces, which record only a window of the run).
    pub(crate) base_step: u64,
    /// Loop markers elided from `events` by `TraceOpts::skip_markers`, in
    /// execution order (empty for ordinary traces).
    pub(crate) markers: Vec<MarkerRecord>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Empty trace with pre-sized buffers: `events` capacity for the event
    /// vector and `operands` for the shared read pool.  Recording into a
    /// pre-sized trace performs no reallocation as long as the estimates
    /// hold, which is what makes tracing runs allocate O(1) vectors.
    pub fn with_capacity(events: usize, operands: usize) -> Self {
        Trace {
            events: Vec::with_capacity(events),
            pool: Vec::with_capacity(operands),
            locations: Vec::with_capacity(events / 2 + 16),
            base_step: 0,
            markers: Vec::new(),
        }
    }

    /// Number of dynamic instructions (including marker events).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no instruction was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of dynamic instructions excluding loop markers — the paper's
    /// "#instr in an iteration" excludes instrumentation artifacts.
    pub fn len_without_markers(&self) -> usize {
        self.events.iter().filter(|e| !e.kind.is_marker()).count()
    }

    /// Approximate heap footprint of the recorded trace in bytes (events,
    /// operand pool, location table, markers).  An estimate over the inline
    /// struct sizes — good enough for cache byte-budget accounting, not an
    /// allocator-exact measurement.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.events.len() * size_of::<TraceEvent>()
            + self.pool.len() * size_of::<(LocationId, Value)>()
            + self.locations.len() * size_of::<Location>()
            + self.markers.len() * size_of::<MarkerRecord>()
    }

    /// Dynamic step of the first recorded event: 0 for full traces, the
    /// window start for region-scoped traces (see `TraceScope`).
    pub fn base_step(&self) -> u64 {
        self.base_step
    }

    /// The loop markers elided from the event stream by
    /// `TraceOpts::skip_markers`, in execution order.  Empty for ordinary
    /// traces, whose markers live in `events` like any other instruction.
    pub fn markers(&self) -> &[MarkerRecord] {
        &self.markers
    }

    /// True when the trace was recorded with `TraceOpts::skip_markers`:
    /// the event stream carries no loop markers, and event indices no longer
    /// coincide with dynamic steps (use [`Trace::step_of`]).
    pub fn markers_elided(&self) -> bool {
        !self.markers.is_empty()
    }

    /// Absolute dynamic step of the event at `idx`: `base_step + idx` plus
    /// the number of elided markers that executed before it.  For traces
    /// recorded without `skip_markers` this is simply `base_step + idx`.
    pub fn step_of(&self, idx: usize) -> u64 {
        let elided = self
            .markers
            .partition_point(|m| m.at_event as usize <= idx);
        self.base_step + idx as u64 + elided as u64
    }

    /// Number of distinct locations the trace touched (the id space is
    /// `0..num_locations()`, dense).
    pub fn num_locations(&self) -> usize {
        self.locations.len()
    }

    /// The interned location table (`LocationId(i)` names entry `i`).
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// Resolve an interned id back to the full location.
    pub fn location(&self, id: LocationId) -> Location {
        self.locations[id.index()]
    }

    /// Find the id of a location, if the trace ever touched it.  Linear scan
    /// over the location table — fine for seeds and tests; hot paths should
    /// carry ids instead.
    pub fn location_id(&self, loc: &Location) -> Option<LocationId> {
        self.locations
            .iter()
            .position(|l| l == loc)
            .map(|i| LocationId(i as u32))
    }

    /// The `(id, value)` operand reads of an event.
    pub fn reads_of(&self, event: &TraceEvent) -> &[(LocationId, Value)] {
        &self.pool[event.reads.range()]
    }

    /// Total number of operand reads across all events.
    pub fn num_operands(&self) -> usize {
        self.pool.len()
    }

    /// A resolved view of the event at `idx`.
    pub fn view(&self, idx: usize) -> EventView<'_> {
        EventView { trace: self, idx }
    }

    /// A borrowed sub-range of the trace (used for region instances).
    pub fn slice(&self, start: usize, end: usize) -> TraceSlice<'_> {
        let end = end.min(self.events.len());
        TraceSlice {
            trace: self,
            start: start.min(end),
            end,
        }
    }

    /// The whole trace as a slice.
    pub fn full(&self) -> TraceSlice<'_> {
        self.slice(0, self.events.len())
    }

    /// Iterate over `(dynamic index, event)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &TraceEvent)> {
        self.events.iter().enumerate()
    }

    /// Iterate over `(dynamic index, resolved view)` pairs.
    pub fn iter_views(&self) -> impl Iterator<Item = (usize, EventView<'_>)> {
        (0..self.events.len()).map(move |idx| (idx, self.view(idx)))
    }

    /// Reconstruct the fully resolved form of the event at `idx`.
    pub fn resolved(&self, idx: usize) -> ResolvedEvent {
        let e = &self.events[idx];
        ResolvedEvent {
            func: e.func,
            frame: e.frame,
            inst: e.inst,
            line: e.line,
            kind: e.kind.clone(),
            reads: self
                .reads_of(e)
                .iter()
                .map(|&(id, v)| (self.location(id), v))
                .collect(),
            write: e.write.map(|(id, v)| (self.location(id), v)),
        }
    }

    /// Build a trace from resolved events (test/tool construction path; the
    /// interpreter records compact events directly).
    pub fn from_resolved(events: impl IntoIterator<Item = ResolvedEvent>) -> Trace {
        let mut b = TraceBuilder::new();
        for e in events {
            b.push(e);
        }
        b.finish()
    }

    /// Index of the first event where this trace and `other` differ in the
    /// value written (bitwise), i.e. where an injected error first becomes
    /// architecturally visible.  `None` when the traces agree everywhere they
    /// overlap.
    pub fn first_divergence(&self, other: &Trace) -> Option<usize> {
        let n = self.events.len().min(other.events.len());
        for i in 0..n {
            let a = &self.events[i];
            let b = &other.events[i];
            let values_differ = match (a.write, b.write) {
                (Some((_, va)), Some((_, vb))) => !va.bit_eq(vb),
                (None, None) => false,
                _ => true,
            };
            if values_differ || a.inst != b.inst || a.func != b.func {
                return Some(i);
            }
        }
        if self.events.len() != other.events.len() {
            Some(n)
        } else {
            None
        }
    }
}

/// A resolved, copyable view of one event: the compact fields plus id →
/// [`Location`] resolution against the owning trace.
#[derive(Debug, Clone, Copy)]
pub struct EventView<'a> {
    trace: &'a Trace,
    idx: usize,
}

impl<'a> EventView<'a> {
    /// The compact event.
    pub fn event(&self) -> &'a TraceEvent {
        &self.trace.events[self.idx]
    }

    /// The owning trace.
    pub fn trace(&self) -> &'a Trace {
        self.trace
    }

    /// Dynamic index within the owning trace.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// The `(id, value)` operand reads.
    pub fn read_ids(&self) -> &'a [(LocationId, Value)] {
        self.trace.reads_of(self.event())
    }

    /// The operand reads with locations resolved.
    pub fn reads(&self) -> impl Iterator<Item = (Location, Value)> + 'a {
        let trace = self.trace;
        self.read_ids()
            .iter()
            .map(move |&(id, v)| (trace.location(id), v))
    }

    /// The location and value written, resolved, if any.
    pub fn write(&self) -> Option<(Location, Value)> {
        self.event()
            .write
            .map(|(id, v)| (self.trace.location(id), v))
    }

    /// The location written, resolved, if any.
    pub fn written_location(&self) -> Option<Location> {
        self.write().map(|(l, _)| l)
    }

    /// True if the event reads the given location.
    pub fn reads_location(&self, loc: &Location) -> bool {
        self.reads().any(|(l, _)| l == *loc)
    }
}

/// A borrowed contiguous range of a trace — the unit the code-region model
/// hands to per-region analyses (DDDG construction, instruction counts).
/// Splitting never copies events, mirroring the paper's observation that
/// trace splitting is what keeps per-region analysis tractable.
#[derive(Debug, Clone, Copy)]
pub struct TraceSlice<'a> {
    trace: &'a Trace,
    start: usize,
    end: usize,
}

impl<'a> TraceSlice<'a> {
    /// The underlying trace.
    pub fn trace(&self) -> &'a Trace {
        self.trace
    }

    /// First event index (inclusive, in trace coordinates).
    pub fn start(&self) -> usize {
        self.start
    }

    /// Past-the-end event index (in trace coordinates).
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of events covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the slice covers no events.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// The covered compact events.
    pub fn events(&self) -> &'a [TraceEvent] {
        &self.trace.events[self.start..self.end]
    }

    /// Resolved view of the `rel`-th event of the slice.
    pub fn view(&self, rel: usize) -> EventView<'a> {
        self.trace.view(self.start + rel)
    }

    /// Iterate over `(relative index, resolved view)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, EventView<'a>)> + 'a {
        let trace = self.trace;
        let start = self.start;
        (start..self.end).map(move |idx| (idx - start, EventView { trace, idx }))
    }
}

/// Incremental construction of a [`Trace`] from resolved events, interning
/// locations through a hash map (the interpreter uses a faster dense scheme
/// internally; this builder is the general-purpose path).
#[derive(Debug, Default)]
pub struct TraceBuilder {
    trace: Trace,
    index: std::collections::HashMap<Location, LocationId>,
}

impl TraceBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Intern a location, returning its dense id.
    pub fn intern(&mut self, loc: Location) -> LocationId {
        if let Some(&id) = self.index.get(&loc) {
            return id;
        }
        let id = LocationId(u32::try_from(self.trace.locations.len()).expect("≤ 2^32 locations"));
        self.trace.locations.push(loc);
        self.index.insert(loc, id);
        id
    }

    /// Append one resolved event.
    pub fn push(&mut self, e: ResolvedEvent) {
        let offset = u32::try_from(self.trace.pool.len()).expect("≤ 2^32 operand reads");
        for (loc, v) in &e.reads {
            let id = self.intern(*loc);
            self.trace.pool.push((id, *v));
        }
        let reads = ReadSpan {
            offset,
            len: e.reads.len() as u32,
        };
        let write = e.write.map(|(loc, v)| (self.intern(loc), v));
        self.trace.events.push(TraceEvent {
            func: e.func,
            frame: e.frame,
            inst: e.inst,
            line: e.line,
            kind: e.kind,
            reads,
            write,
        });
    }

    /// Finish, yielding the compact trace.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(val: f64) -> ResolvedEvent {
        ResolvedEvent {
            func: FunctionId(0),
            frame: 0,
            inst: ValueId(0),
            line: 1,
            kind: EventKind::Bin(BinKind::FAdd),
            reads: vec![(Location::mem(0), Value::F(1.0))],
            write: Some((Location::mem(1), Value::F(val))),
        }
    }

    #[test]
    fn trace_counting_skips_markers() {
        let t = Trace::from_resolved(vec![
            event(1.0),
            ResolvedEvent {
                kind: EventKind::LoopIter { id: LoopId(0) },
                reads: vec![],
                write: None,
                ..event(0.0)
            },
        ]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.len_without_markers(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn divergence_detection() {
        let mut a = TraceBuilder::new();
        let mut b = TraceBuilder::new();
        a.push(event(1.0));
        b.push(event(1.0));
        assert_eq!(a.trace.first_divergence(&b.trace), None);
        a.push(event(2.0));
        b.push(event(2.5));
        assert_eq!(a.trace.first_divergence(&b.trace), Some(1));
        // Length mismatch counts as divergence at the shorter length.
        b.push(event(3.0));
        assert_eq!(a.trace.first_divergence(&b.trace), Some(1));
    }

    #[test]
    fn event_accessors_resolve_through_the_trace() {
        let t = Trace::from_resolved(vec![event(4.0)]);
        let v = t.view(0);
        assert_eq!(v.event().written_value(), Some(Value::F(4.0)));
        assert_eq!(v.written_location(), Some(Location::mem(1)));
        assert!(v.reads_location(&Location::mem(0)));
        assert!(!v.reads_location(&Location::mem(9)));
        assert!(!v.event().kind.is_marker());
        assert_eq!(v.event().num_reads(), 1);
    }

    #[test]
    fn interning_is_dense_and_deduplicated() {
        let t = Trace::from_resolved(vec![event(1.0), event(2.0), event(3.0)]);
        // Two distinct locations across three events.
        assert_eq!(t.num_locations(), 2);
        assert_eq!(t.location(LocationId(0)), Location::mem(0));
        assert_eq!(t.location_id(&Location::mem(1)), Some(LocationId(1)));
        assert_eq!(t.location_id(&Location::mem(77)), None);
        assert_eq!(t.num_operands(), 3);
        // Round trip through the resolved form.
        let r = t.resolved(1);
        assert_eq!(r.reads, vec![(Location::mem(0), Value::F(1.0))]);
        assert_eq!(r.write, Some((Location::mem(1), Value::F(2.0))));
    }

    #[test]
    fn slices_expose_views_in_slice_coordinates() {
        let t = Trace::from_resolved(vec![event(1.0), event(2.0), event(3.0)]);
        let s = t.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.view(0).event().written_value(), Some(Value::F(2.0)));
        let idxs: Vec<usize> = s.iter().map(|(i, _)| i).collect();
        assert_eq!(idxs, vec![0, 1]);
        // Slices clamp to the trace length.
        assert_eq!(t.slice(2, 100).len(), 1);
        assert!(t.slice(5, 3).is_empty());
        assert_eq!(t.full().len(), 3);
    }

    #[test]
    fn traces_serialize_with_pool_and_location_table() {
        let t = Trace::from_resolved(vec![event(1.0), event(2.0)]);
        let json = serde_json::to_string(&t).unwrap();
        // The compact layout is serialized as-is: events, shared pool,
        // interned location table.
        assert!(json.contains("\"events\""));
        assert!(json.contains("\"pool\""));
        assert!(json.contains("\"locations\""));
    }
}
