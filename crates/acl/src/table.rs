//! Construction of the ACL table from a faulty trace.
//!
//! The builder is the hottest analysis stage of the pipeline (it runs once
//! per injection), so it works entirely in the trace's dense [`LocationId`]
//! space: flat `Vec<u32>` last-access tables, a counting-sort reverse index
//! of death events, and a bitmap taint set — no hash maps.  The retained
//! hash-based implementation lives in [`crate::reference`] and is compared
//! against this one by the workspace property tests.
//!
//! The sweep itself is incremental ([`TaintSweep`]): one [`TaintSweep::step`]
//! call per dynamic event, in order.  [`AclTable::build`] drives it over a
//! trace through the shared [`ftkr_vm::EventCursor`] visitor machinery, and
//! the fused per-injection pipeline in `ftkr_patterns` drives the *same*
//! sweep while evaluating all six pattern detectors in the same walk — one
//! pass over the events instead of seven.

use ftkr_vm::{FaultSpec, FaultTarget, Location, LocationId, Trace, TraceEvent, Value};

/// Why a corrupted location stopped being alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeathCause {
    /// It was overwritten by a value not derived from corrupted data
    /// (the Data Overwriting pattern).
    Overwritten,
    /// Its value is never referenced again in the remainder of the trace
    /// (dead corrupted location).
    NeverUsedAgain,
}

/// One corrupted location leaving the alive set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AclDeath {
    /// Dynamic instruction index after which the location is dead.
    pub event: usize,
    /// The location.
    pub location: Location,
    /// Why it died.
    pub cause: DeathCause,
    /// Source line of the instruction at `event`.
    pub line: u32,
}

/// The alive-corrupted-locations table of one faulty run.
#[derive(Debug, Clone, Default)]
pub struct AclTable {
    /// Number of alive corrupted locations *after* each dynamic instruction
    /// (the last row of Figure 3 in the paper).
    pub counts: Vec<u32>,
    /// Every event at which a location became corrupted.
    pub births: Vec<(usize, Location)>,
    /// Every event at which a corrupted location died, with its cause.
    pub deaths: Vec<AclDeath>,
    /// Locations still corrupted (and alive) when the trace ends.
    pub final_corrupted: Vec<Location>,
    /// For every event, whether it read at least one alive corrupted
    /// location (pattern detectors key off this).
    pub tainted_reads: Vec<bool>,
}

/// Sentinel for "never accessed" in the dense last-access table.
const NEVER: u32 = u32::MAX;

/// Dense bitmap over the trace's location-id space, with a live counter —
/// the taint set of the ACL sweep.
struct TaintSet {
    words: Vec<u64>,
    alive: u32,
}

impl TaintSet {
    fn new(num_locations: usize) -> Self {
        TaintSet {
            words: vec![0u64; num_locations.div_ceil(64)],
            alive: 0,
        }
    }

    #[inline]
    fn contains(&self, id: LocationId) -> bool {
        let i = id.index();
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Set the bit; true if it was newly set.
    #[inline]
    fn insert(&mut self, id: LocationId) -> bool {
        let i = id.index();
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if *word & mask != 0 {
            return false;
        }
        *word |= mask;
        self.alive += 1;
        true
    }

    /// Clear the bit; true if it was set.
    #[inline]
    fn remove(&mut self, id: LocationId) -> bool {
        let i = id.index();
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if *word & mask == 0 {
            return false;
        }
        *word &= !mask;
        self.alive -= 1;
        true
    }

    /// Ids of all set bits, ascending.
    fn iter_set(&self) -> impl Iterator<Item = LocationId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some(LocationId((w * 64) as u32 + b))
            })
        })
    }
}

/// A seed corruption with its (optional) interned id: seeds naming locations
/// the trace never touches have no id and are born dead immediately.
#[derive(Clone, Copy)]
struct Seed {
    event: usize,
    location: Location,
    id: Option<LocationId>,
}

/// The taint outcome of one sweep step.
#[derive(Debug, Clone)]
pub struct StepTaint {
    /// True when the event read at least one alive corrupted location.
    pub reads_tainted: bool,
    /// Number of alive corrupted locations *after* the event.
    pub alive: u32,
    /// Range of `AclTable::deaths` entries this event appended (pattern
    /// detectors key off the death log without re-walking it).
    pub deaths: std::ops::Range<usize>,
}

/// The incremental exact ACL sweep: per-event taint tracking with the full
/// trace's last-access knowledge precomputed, so a location leaves the alive
/// set exactly when the paper says it should (clean overwrite, or final
/// access).  One [`TaintSweep::step`] call per event, in order, appending
/// births/deaths/counts to an [`AclTable`]; [`TaintSweep::finish`] seals the
/// table.  [`AclTable::build`] and the fused pattern pipeline are both thin
/// drivers around this type.
pub struct TaintSweep {
    last_access: Vec<u32>,
    die_off: Vec<u32>,
    dying: Vec<u32>,
    sorted_seeds: Vec<Seed>,
    next_seed: usize,
    tainted: TaintSet,
}

impl TaintSweep {
    /// Prepare a sweep over `trace` with the given seed corruptions:
    /// `(event index, location)` pairs stating that `location` becomes
    /// corrupted at the instruction with that dynamic index.
    pub fn new(trace: &Trace, seeds: &[(usize, Location)]) -> TaintSweep {
        let n = trace.len();
        let nloc = trace.num_locations();

        // Backward-pass equivalent, done forward in one scan: last dynamic
        // index at which each location is *accessed* (read, or written — a
        // pending overwrite keeps the location of interest, exactly as in
        // Figure 3 of the paper where Loc_1 stays alive until the
        // instruction that overwrites it).
        let mut last_access: Vec<u32> = vec![NEVER; nloc];
        for (idx, event) in trace.iter() {
            for &(id, _) in trace.reads_of(event) {
                last_access[id.index()] = idx as u32;
            }
            if let Some((id, _)) = event.write {
                last_access[id.index()] = idx as u32;
            }
        }

        // Reverse index as a counting sort: `dying[die_off[i]..die_off[i+1]]`
        // holds the ids whose final access is event `i`.
        let mut die_off: Vec<u32> = vec![0; n + 2];
        for &la in &last_access {
            if la != NEVER {
                die_off[la as usize + 1] += 1;
            }
        }
        for i in 1..die_off.len() {
            die_off[i] += die_off[i - 1];
        }
        let mut dying: Vec<u32> = vec![0; *die_off.last().unwrap_or(&0) as usize];
        {
            let mut cursor = die_off.clone();
            for (id, &la) in last_access.iter().enumerate() {
                if la != NEVER {
                    dying[cursor[la as usize] as usize] = id as u32;
                    cursor[la as usize] += 1;
                }
            }
        }

        // Seeds sorted by event (stable: preserves caller order per event).
        let mut sorted_seeds: Vec<Seed> = seeds
            .iter()
            .map(|&(event, location)| Seed {
                event,
                location,
                id: trace.location_id(&location),
            })
            .collect();
        sorted_seeds.sort_by_key(|s| s.event);

        TaintSweep {
            last_access,
            die_off,
            dying,
            sorted_seeds,
            next_seed: 0,
            tainted: TaintSet::new(nloc),
        }
    }

    /// Prepare a sweep whose seeds derive from a [`FaultSpec`] exactly as
    /// [`AclTable::from_fault`] does.
    pub fn from_fault(trace: &Trace, fault: &FaultSpec) -> TaintSweep {
        TaintSweep::new(trace, &AclTable::fault_seeds(trace, fault))
    }

    /// True when the given location id is currently alive-corrupted.
    pub fn is_tainted(&self, id: LocationId) -> bool {
        self.tainted.contains(id)
    }

    /// A corruption that is never accessed from here on is born dead
    /// ("tainted locations that are never used are excluded").
    fn birth(
        &mut self,
        table: &mut AclTable,
        idx: usize,
        id: Option<LocationId>,
        location: Location,
        line: u32,
    ) {
        let lives = matches!(id, Some(id) if {
            let la = self.last_access[id.index()];
            la != NEVER && la as usize >= idx
        });
        if !lives {
            table.births.push((idx, location));
            table.deaths.push(AclDeath {
                event: idx,
                location,
                cause: DeathCause::NeverUsedAgain,
                line,
            });
            return;
        }
        let id = id.expect("live seed has an id");
        if self.tainted.insert(id) {
            table.births.push((idx, location));
        }
    }

    /// Advance the sweep over the event at index `idx`, appending the taint
    /// bookkeeping of that event to `table`.  `reads` are the event's operand
    /// reads and `locations` the (at least partially) interned location
    /// table — exactly what an [`ftkr_vm::EventCtx`] carries.  Events must be
    /// fed in order, exactly once each.
    pub fn step(
        &mut self,
        idx: usize,
        event: &TraceEvent,
        reads: &[(LocationId, Value)],
        locations: &[Location],
        table: &mut AclTable,
    ) -> StepTaint {
        let deaths_start = table.deaths.len();

        // Seed corruptions strike at this instruction.
        let seed_start = self.next_seed;
        while self.next_seed < self.sorted_seeds.len()
            && self.sorted_seeds[self.next_seed].event == idx
        {
            let s = self.sorted_seeds[self.next_seed];
            self.next_seed += 1;
            self.birth(table, idx, s.id, s.location, event.line);
        }
        let seeded_range = seed_start..self.next_seed;

        // Fast path: with nothing alive-corrupted (before the fault strikes,
        // and after full cleanup) no read can be tainted.
        let reads_tainted = self.tainted.alive != 0
            && reads.iter().any(|&(id, _)| self.tainted.contains(id));
        table.tainted_reads.push(reads_tainted);

        if let Some((wid, _)) = event.write {
            if reads_tainted {
                self.birth(table, idx, Some(wid), locations[wid.index()], event.line);
            } else if !self.sorted_seeds[seeded_range].iter().any(|s| s.id == Some(wid))
                && self.tainted.remove(wid)
            {
                // Overwritten by a value not derived from corrupted data.
                table.deaths.push(AclDeath {
                    event: idx,
                    location: locations[wid.index()],
                    cause: DeathCause::Overwritten,
                    line: event.line,
                });
            }
        }

        // Corrupted locations whose final access is this instruction will
        // never be referenced again: they die here.
        let dying_here = &self.dying[self.die_off[idx] as usize..self.die_off[idx + 1] as usize];
        for &raw in dying_here {
            let id = LocationId(raw);
            if self.tainted.remove(id) {
                table.deaths.push(AclDeath {
                    event: idx,
                    location: locations[id.index()],
                    cause: DeathCause::NeverUsedAgain,
                    line: event.line,
                });
            }
        }

        table.counts.push(self.tainted.alive);
        StepTaint {
            reads_tainted,
            alive: self.tainted.alive,
            deaths: deaths_start..table.deaths.len(),
        }
    }

    /// Seal the table after the last event: record the locations still
    /// corrupted (and alive) when the trace ends.
    pub fn finish(&self, locations: &[Location], table: &mut AclTable) {
        let mut final_corrupted: Vec<Location> = self
            .tainted
            .iter_set()
            .map(|id| locations[id.index()])
            .collect();
        final_corrupted.sort();
        table.final_corrupted = final_corrupted;
    }
}

impl AclTable {
    /// Build the table given the seed corruptions: `(event index, location)`
    /// pairs stating that `location` becomes corrupted at the instruction
    /// with that dynamic index (for an instruction-result fault this is the
    /// defining instruction; for a memory fault it is the instruction about
    /// to execute when the cell is struck).
    ///
    /// This is a monomorphic [`TaintSweep`] loop (the stand-alone fast
    /// path); [`crate::visitor::AclVisitor`] packages the same sweep as a
    /// [`ftkr_vm::TraceVisitor`] for fused multi-analysis walks — fuse the
    /// sweep with other analyses instead of calling this next to another
    /// full-trace pass.
    pub fn build(trace: &Trace, seeds: &[(usize, Location)]) -> AclTable {
        let mut sweep = TaintSweep::new(trace, seeds);
        let mut table = AclTable {
            counts: Vec::with_capacity(trace.len()),
            tainted_reads: Vec::with_capacity(trace.len()),
            ..Default::default()
        };
        let locations = trace.locations();
        for (idx, event) in trace.iter() {
            sweep.step(idx, event, trace.reads_of(event), locations, &mut table);
        }
        sweep.finish(locations, &mut table);
        table
    }

    /// The seed corruptions a [`FaultSpec`] implies for a given faulty trace.
    pub fn fault_seeds(trace: &Trace, fault: &FaultSpec) -> Vec<(usize, Location)> {
        match fault.target {
            FaultTarget::InstructionResult => {
                let step = fault.at_step as usize;
                trace
                    .events
                    .get(step)
                    .and_then(|e| e.write)
                    .map(|(id, _)| vec![(step, trace.location(id))])
                    .unwrap_or_default()
            }
            FaultTarget::MemoryCell { addr } => {
                vec![(fault.at_step as usize, Location::mem(addr))]
            }
        }
    }

    /// Derive the seed corruption from a [`FaultSpec`] and build the table.
    /// For an instruction-result fault the corrupted location is whatever the
    /// instruction at `at_step` wrote; for a memory fault it is the cell.
    pub fn from_fault(trace: &Trace, fault: &FaultSpec) -> AclTable {
        AclTable::build(trace, &AclTable::fault_seeds(trace, fault))
    }

    /// Largest number of simultaneously alive corrupted locations.
    pub fn max_count(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Count after the given dynamic instruction.
    pub fn count_at(&self, event: usize) -> u32 {
        self.counts.get(event).copied().unwrap_or(0)
    }

    /// `(event, count)` series, down-sampled to at most `max_points` points —
    /// the series plotted in Figure 7 of the paper.  The first and last
    /// events are always included (when `max_points >= 2`).
    pub fn series(&self, max_points: usize) -> Vec<(usize, u32)> {
        let len = self.counts.len();
        if len == 0 || max_points == 0 {
            return Vec::new();
        }
        if len <= max_points {
            return self.counts.iter().copied().enumerate().collect();
        }
        if max_points == 1 {
            return vec![(len - 1, self.counts[len - 1])];
        }
        // stride ≥ (len-1)/(max_points-1) guarantees at most max_points-1
        // stride samples in [0, len-2], plus the forced final point.
        let stride = (len - 1).div_ceil(max_points - 1);
        let mut out: Vec<(usize, u32)> = (0..len - 1)
            .step_by(stride)
            .map(|i| (i, self.counts[i]))
            .collect();
        out.push((len - 1, self.counts[len - 1]));
        out
    }

    /// Events at which the alive-corrupted count decreased — the candidate
    /// members of resilience computation patterns (Section III-D).
    pub fn decrease_events(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for i in 1..self.counts.len() {
            if self.counts[i] < self.counts[i - 1] {
                out.push(i);
            }
        }
        out
    }

    /// True when the error is fully gone by the end of the run: no alive
    /// corrupted location remains.
    pub fn fully_cleaned(&self) -> bool {
        self.final_corrupted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftkr_ir::{BinKind, FunctionId, ValueId};
    use ftkr_vm::{EventKind, ResolvedEvent, Trace, Value};

    fn ev(reads: Vec<Location>, write: Option<Location>) -> ResolvedEvent {
        ResolvedEvent {
            func: FunctionId(0),
            frame: 0,
            inst: ValueId(0),
            line: 1,
            kind: EventKind::Bin(BinKind::FAdd),
            reads: reads.into_iter().map(|l| (l, Value::F(1.0))).collect(),
            write: write.map(|l| (l, Value::F(1.0))),
        }
    }

    /// Reproduce the example of Figure 3 in the paper:
    ///
    /// | instr | effect                                            | ACL |
    /// |-------|---------------------------------------------------|-----|
    /// | 1     | Loc_1 corrupted by the injected error             | 1   |
    /// | 2     | unrelated                                         | 1   |
    /// | 3     | reads Loc_1, corrupts Loc_2                       | 2   |
    /// | 4     | unrelated                                         | 2   |
    /// | 5     | Loc_1 overwritten by a clean value                | 1   |
    /// | 6     | last instruction; Loc_2 never used afterwards     | 0   |
    #[test]
    fn figure3_example_matches_the_paper() {
        let loc1 = Location::mem(1);
        let loc2 = Location::mem(2);
        let other = Location::mem(99);
        let trace = Trace::from_resolved(vec![
            // dynamic instruction 1 (index 0): produces Loc_1 (fault here)
            ev(vec![], Some(loc1)),
            // instruction 2: unrelated
            ev(vec![other], Some(other)),
            // instruction 3: reads Loc_1, writes Loc_2
            ev(vec![loc1, other], Some(loc2)),
            // instruction 4: unrelated
            ev(vec![other], Some(other)),
            // instruction 5: overwrites Loc_1 with clean data; also the
            // last time Loc_2 is of interest is later...
            ev(vec![other], Some(loc1)),
            // instruction 6: reads Loc_2 for the last time
            ev(vec![loc2], Some(other)),
        ]);
        // The injected error corrupts the result of instruction 1 (index 0).
        let table = AclTable::build(&trace, &[(0, loc1)]);
        assert_eq!(table.counts, vec![1, 1, 2, 2, 1, 0]);
        assert_eq!(table.max_count(), 2);
        assert!(table.fully_cleaned());
        // Loc_1 died by overwrite at instruction 5 (index 4); Loc_2 died by
        // never being used again at instruction 6 (index 5).
        assert!(table.deaths.iter().any(
            |d| d.location == loc1 && d.cause == DeathCause::Overwritten && d.event == 4
        ));
        assert!(table.deaths.iter().any(
            |d| d.location == loc2 && d.cause == DeathCause::NeverUsedAgain && d.event == 5
        ));
        assert_eq!(table.decrease_events(), vec![4, 5]);
        // Only instructions 3 and 6 (indices 2 and 5) read corrupted data.
        assert_eq!(table.tainted_reads, vec![false, false, true, false, false, true]);
    }

    #[test]
    fn corrupted_value_never_read_again_is_born_dead() {
        let loc = Location::mem(5);
        let trace = Trace::from_resolved(vec![
            ev(vec![], Some(loc)),
            ev(vec![Location::mem(9)], None),
        ]);
        let table = AclTable::build(&trace, &[(0, loc)]);
        assert_eq!(table.counts, vec![0, 0]);
        assert_eq!(table.births.len(), 1);
        assert_eq!(table.deaths.len(), 1);
        assert_eq!(table.deaths[0].cause, DeathCause::NeverUsedAgain);
    }

    #[test]
    fn seeds_on_locations_the_trace_never_touches_are_born_dead() {
        let trace = Trace::from_resolved(vec![ev(vec![Location::mem(1)], None)]);
        let ghost = Location::mem(777);
        let table = AclTable::build(&trace, &[(0, ghost)]);
        assert_eq!(table.counts, vec![0]);
        assert_eq!(table.births, vec![(0, ghost)]);
        assert_eq!(table.deaths.len(), 1);
        assert_eq!(table.deaths[0].location, ghost);
        assert!(table.fully_cleaned());
    }

    #[test]
    fn taint_propagates_through_chains_and_survives_at_end() {
        let a = Location::mem(1);
        let b = Location::mem(2);
        let c = Location::mem(3);
        let trace = Trace::from_resolved(vec![
            ev(vec![], Some(a)),
            ev(vec![a], Some(b)),
            ev(vec![b], Some(c)),
            ev(vec![c], None), // c read at the end (e.g. output)
        ]);
        let table = AclTable::build(&trace, &[(0, a)]);
        // a dies after event 1 (its last read), b after event 2, c stays
        // alive through event 3 where it is read by the final event... and
        // then has no further use, so it dies there.
        assert_eq!(table.counts, vec![1, 1, 1, 0]);
        assert!(table.fully_cleaned());
        let t2 = AclTable::build(
            &Trace::from_resolved(vec![
                ev(vec![], Some(a)),
                ev(vec![a], Some(b)),
                ev(vec![b], Some(c)),
                ev(vec![c], Some(b)),
            ]),
            &[(0, a)],
        );
        // b is re-corrupted by the final write but never read => dead; final
        // set must be empty.
        assert!(t2.fully_cleaned());
    }

    #[test]
    fn memory_fault_seeds_from_fault_spec() {
        let loc = Location::mem(7);
        let trace = Trace::from_resolved(vec![
            ev(vec![loc], Some(Location::mem(8))),
            ev(vec![Location::mem(8)], None),
        ]);
        let fault = FaultSpec::in_memory(0, 7, 3);
        let table = AclTable::from_fault(&trace, &fault);
        // m[7] corrupted before event 0; it propagates to m[8].
        assert_eq!(table.counts, vec![1, 0]);
        assert_eq!(table.births.len(), 2);
    }

    #[test]
    fn result_fault_seeds_from_fault_spec() {
        let loc = Location::mem(7);
        let trace = Trace::from_resolved(vec![ev(vec![], Some(loc)), ev(vec![loc], None)]);
        let fault = FaultSpec::in_result(0, 10);
        let table = AclTable::from_fault(&trace, &fault);
        assert_eq!(table.counts, vec![1, 0]);
    }

    #[test]
    fn series_downsamples() {
        let loc = Location::mem(1);
        let mut events = vec![ev(vec![], Some(loc))];
        for _ in 0..99 {
            events.push(ev(vec![loc], None));
        }
        let trace = Trace::from_resolved(events);
        let table = AclTable::build(&trace, &[(0, loc)]);
        assert_eq!(table.counts.len(), 100);
        let series = table.series(10);
        assert!(series.len() <= 12);
        assert_eq!(series.first().unwrap().0, 0);
        assert_eq!(series.last().unwrap().0, 99);
        assert!(table.series(0).is_empty());
    }

    #[test]
    fn series_never_exceeds_max_points() {
        let loc = Location::mem(1);
        for len in [1usize, 2, 3, 9, 10, 11, 97, 100, 101, 1000] {
            let mut events = vec![ev(vec![], Some(loc))];
            for _ in 1..len {
                events.push(ev(vec![loc], None));
            }
            let trace = Trace::from_resolved(events);
            let table = AclTable::build(&trace, &[(0, loc)]);
            for max_points in [1usize, 2, 3, 7, 10, 12, 1000] {
                let series = table.series(max_points);
                assert!(
                    series.len() <= max_points,
                    "len {len}, max_points {max_points}: got {} points",
                    series.len()
                );
                assert!(!series.is_empty());
                // The final count is always present.
                assert_eq!(series.last().unwrap().0, len - 1);
                if max_points >= 2 {
                    assert_eq!(series.first().unwrap().0, 0);
                }
                // Events are strictly increasing.
                assert!(series.windows(2).all(|w| w[0].0 < w[1].0));
            }
        }
    }

    #[test]
    fn clean_overwrite_of_untainted_location_is_not_a_death() {
        let loc = Location::mem(1);
        let trace = Trace::from_resolved(vec![ev(vec![], Some(loc)), ev(vec![loc], None)]);
        let table = AclTable::build(&trace, &[]);
        assert_eq!(table.counts, vec![0, 0]);
        assert!(table.deaths.is_empty());
        assert!(table.births.is_empty());
    }
}
