//! Construction of the ACL table from a faulty trace.

use std::collections::{HashMap, HashSet};

use ftkr_vm::{FaultSpec, FaultTarget, Location, Trace};

/// Why a corrupted location stopped being alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeathCause {
    /// It was overwritten by a value not derived from corrupted data
    /// (the Data Overwriting pattern).
    Overwritten,
    /// Its value is never referenced again in the remainder of the trace
    /// (dead corrupted location).
    NeverUsedAgain,
}

/// One corrupted location leaving the alive set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AclDeath {
    /// Dynamic instruction index after which the location is dead.
    pub event: usize,
    /// The location.
    pub location: Location,
    /// Why it died.
    pub cause: DeathCause,
    /// Source line of the instruction at `event`.
    pub line: u32,
}

/// The alive-corrupted-locations table of one faulty run.
#[derive(Debug, Clone, Default)]
pub struct AclTable {
    /// Number of alive corrupted locations *after* each dynamic instruction
    /// (the last row of Figure 3 in the paper).
    pub counts: Vec<u32>,
    /// Every event at which a location became corrupted.
    pub births: Vec<(usize, Location)>,
    /// Every event at which a corrupted location died, with its cause.
    pub deaths: Vec<AclDeath>,
    /// Locations still corrupted (and alive) when the trace ends.
    pub final_corrupted: Vec<Location>,
    /// For every event, whether it read at least one alive corrupted
    /// location (pattern detectors key off this).
    pub tainted_reads: Vec<bool>,
}

impl AclTable {
    /// Build the table given the seed corruptions: `(event index, location)`
    /// pairs stating that `location` becomes corrupted at the instruction
    /// with that dynamic index (for an instruction-result fault this is the
    /// defining instruction; for a memory fault it is the instruction about
    /// to execute when the cell is struck).
    pub fn build(trace: &Trace, seeds: &[(usize, Location)]) -> AclTable {
        // Backward pass: last dynamic index at which each location is
        // *accessed* (read, or written — a pending overwrite keeps the
        // location of interest, exactly as in Figure 3 of the paper where
        // Loc_1 stays alive until the instruction that overwrites it).
        let mut last_access: HashMap<Location, usize> = HashMap::new();
        for (idx, event) in trace.iter() {
            for &(loc, _) in &event.reads {
                last_access.insert(loc, idx);
            }
            if let Some((loc, _)) = event.write {
                last_access.insert(loc, idx);
            }
        }
        // Reverse index: locations whose final access is at event i.
        let mut dies_at: HashMap<usize, Vec<Location>> = HashMap::new();
        for (&loc, &idx) in &last_access {
            dies_at.entry(idx).or_default().push(loc);
        }
        // Seeds grouped by event.
        let mut seeds_at: HashMap<usize, Vec<Location>> = HashMap::new();
        for &(idx, loc) in seeds {
            seeds_at.entry(idx).or_default().push(loc);
        }

        let mut tainted: HashSet<Location> = HashSet::new();
        let mut table = AclTable {
            counts: Vec::with_capacity(trace.len()),
            tainted_reads: Vec::with_capacity(trace.len()),
            ..Default::default()
        };

        let birth = |table: &mut AclTable,
                         tainted: &mut HashSet<Location>,
                         idx: usize,
                         loc: Location,
                         line: u32| {
            // A corrupted value that is never accessed from here on is born
            // dead ("tainted locations that are never used are excluded").
            let lives = matches!(last_access.get(&loc), Some(&lu) if lu >= idx);
            if !lives {
                table.births.push((idx, loc));
                table.deaths.push(AclDeath {
                    event: idx,
                    location: loc,
                    cause: DeathCause::NeverUsedAgain,
                    line,
                });
                return;
            }
            if tainted.insert(loc) {
                table.births.push((idx, loc));
            }
        };

        for (idx, event) in trace.iter() {
            // Seed corruptions strike at this instruction.
            let seeded_here: &[Location] = seeds_at.get(&idx).map(Vec::as_slice).unwrap_or(&[]);
            for &loc in seeded_here {
                birth(&mut table, &mut tainted, idx, loc, event.line);
            }

            let reads_tainted = event.reads.iter().any(|(l, _)| tainted.contains(l));
            table.tainted_reads.push(reads_tainted);

            if let Some((wloc, _)) = event.write {
                if reads_tainted {
                    birth(&mut table, &mut tainted, idx, wloc, event.line);
                } else if !seeded_here.contains(&wloc) && tainted.remove(&wloc) {
                    // Overwritten by a value not derived from corrupted data.
                    table.deaths.push(AclDeath {
                        event: idx,
                        location: wloc,
                        cause: DeathCause::Overwritten,
                        line: event.line,
                    });
                }
            }

            // Corrupted locations whose final access is this instruction will
            // never be referenced again: they die here.
            if let Some(locs) = dies_at.get(&idx) {
                for &loc in locs {
                    if tainted.remove(&loc) {
                        table.deaths.push(AclDeath {
                            event: idx,
                            location: loc,
                            cause: DeathCause::NeverUsedAgain,
                            line: event.line,
                        });
                    }
                }
            }

            table.counts.push(tainted.len() as u32);
        }

        let mut final_corrupted: Vec<Location> = tainted.into_iter().collect();
        final_corrupted.sort();
        table.final_corrupted = final_corrupted;
        table
    }

    /// Derive the seed corruption from a [`FaultSpec`] and build the table.
    /// For an instruction-result fault the corrupted location is whatever the
    /// instruction at `at_step` wrote; for a memory fault it is the cell.
    pub fn from_fault(trace: &Trace, fault: &FaultSpec) -> AclTable {
        let seeds: Vec<(usize, Location)> = match fault.target {
            FaultTarget::InstructionResult => {
                let step = fault.at_step as usize;
                trace
                    .events
                    .get(step)
                    .and_then(|e| e.write)
                    .map(|(loc, _)| vec![(step, loc)])
                    .unwrap_or_default()
            }
            FaultTarget::MemoryCell { addr } => {
                vec![(fault.at_step as usize, Location::mem(addr))]
            }
        };
        AclTable::build(trace, &seeds)
    }

    /// Largest number of simultaneously alive corrupted locations.
    pub fn max_count(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Count after the given dynamic instruction.
    pub fn count_at(&self, event: usize) -> u32 {
        self.counts.get(event).copied().unwrap_or(0)
    }

    /// `(event, count)` series, down-sampled to at most `max_points` points —
    /// the series plotted in Figure 7 of the paper.
    pub fn series(&self, max_points: usize) -> Vec<(usize, u32)> {
        if self.counts.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let stride = (self.counts.len() / max_points).max(1);
        self.counts
            .iter()
            .enumerate()
            .filter(|(i, _)| i % stride == 0 || *i + 1 == self.counts.len())
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Events at which the alive-corrupted count decreased — the candidate
    /// members of resilience computation patterns (Section III-D).
    pub fn decrease_events(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for i in 1..self.counts.len() {
            if self.counts[i] < self.counts[i - 1] {
                out.push(i);
            }
        }
        out
    }

    /// True when the error is fully gone by the end of the run: no alive
    /// corrupted location remains.
    pub fn fully_cleaned(&self) -> bool {
        self.final_corrupted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftkr_ir::{BinKind, FunctionId, ValueId};
    use ftkr_vm::{EventKind, TraceEvent, Value};

    fn ev(reads: Vec<Location>, write: Option<Location>) -> TraceEvent {
        TraceEvent {
            func: FunctionId(0),
            frame: 0,
            inst: ValueId(0),
            line: 1,
            kind: EventKind::Bin(BinKind::FAdd),
            reads: reads.into_iter().map(|l| (l, Value::F(1.0))).collect(),
            write: write.map(|l| (l, Value::F(1.0))),
        }
    }

    /// Reproduce the example of Figure 3 in the paper:
    ///
    /// | instr | effect                                            | ACL |
    /// |-------|---------------------------------------------------|-----|
    /// | 1     | Loc_1 corrupted by the injected error             | 1   |
    /// | 2     | unrelated                                         | 1   |
    /// | 3     | reads Loc_1, corrupts Loc_2                       | 2   |
    /// | 4     | unrelated                                         | 2   |
    /// | 5     | Loc_1 overwritten by a clean value                | 1   |
    /// | 6     | last instruction; Loc_2 never used afterwards     | 0   |
    #[test]
    fn figure3_example_matches_the_paper() {
        let loc1 = Location::mem(1);
        let loc2 = Location::mem(2);
        let other = Location::mem(99);
        let trace = Trace {
            events: vec![
                // dynamic instruction 1 (index 0): produces Loc_1 (fault here)
                ev(vec![], Some(loc1)),
                // instruction 2: unrelated
                ev(vec![other], Some(other)),
                // instruction 3: reads Loc_1, writes Loc_2
                ev(vec![loc1, other], Some(loc2)),
                // instruction 4: unrelated
                ev(vec![other], Some(other)),
                // instruction 5: overwrites Loc_1 with clean data; also the
                // last time Loc_2 is of interest is later...
                ev(vec![other], Some(loc1)),
                // instruction 6: reads Loc_2 for the last time
                ev(vec![loc2], Some(other)),
            ],
        };
        // The injected error corrupts the result of instruction 1 (index 0).
        let table = AclTable::build(&trace, &[(0, loc1)]);
        assert_eq!(table.counts, vec![1, 1, 2, 2, 1, 0]);
        assert_eq!(table.max_count(), 2);
        assert!(table.fully_cleaned());
        // Loc_1 died by overwrite at instruction 5 (index 4); Loc_2 died by
        // never being used again at instruction 6 (index 5).
        assert!(table.deaths.iter().any(
            |d| d.location == loc1 && d.cause == DeathCause::Overwritten && d.event == 4
        ));
        assert!(table.deaths.iter().any(
            |d| d.location == loc2 && d.cause == DeathCause::NeverUsedAgain && d.event == 5
        ));
        assert_eq!(table.decrease_events(), vec![4, 5]);
        // Only instructions 3 and 6 (indices 2 and 5) read corrupted data.
        assert_eq!(table.tainted_reads, vec![false, false, true, false, false, true]);
    }

    #[test]
    fn corrupted_value_never_read_again_is_born_dead() {
        let loc = Location::mem(5);
        let trace = Trace {
            events: vec![ev(vec![], Some(loc)), ev(vec![Location::mem(9)], None)],
        };
        let table = AclTable::build(&trace, &[(0, loc)]);
        assert_eq!(table.counts, vec![0, 0]);
        assert_eq!(table.births.len(), 1);
        assert_eq!(table.deaths.len(), 1);
        assert_eq!(table.deaths[0].cause, DeathCause::NeverUsedAgain);
    }

    #[test]
    fn taint_propagates_through_chains_and_survives_at_end() {
        let a = Location::mem(1);
        let b = Location::mem(2);
        let c = Location::mem(3);
        let trace = Trace {
            events: vec![
                ev(vec![], Some(a)),
                ev(vec![a], Some(b)),
                ev(vec![b], Some(c)),
                ev(vec![c], None), // c read at the end (e.g. output)
            ],
        };
        let table = AclTable::build(&trace, &[(0, a)]);
        // a dies after event 1 (its last read), b after event 2, c stays
        // alive through event 3 where it is read by the final event... and
        // then has no further use, so it dies there.
        assert_eq!(table.counts, vec![1, 1, 1, 0]);
        assert!(table.fully_cleaned());
        let t2 = AclTable::build(
            &Trace {
                events: vec![ev(vec![], Some(a)), ev(vec![a], Some(b)), ev(vec![b], Some(c)), ev(vec![c], Some(b))],
            },
            &[(0, a)],
        );
        // b is re-corrupted by the final write but never read => dead; final
        // set must be empty.
        assert!(t2.fully_cleaned());
    }

    #[test]
    fn memory_fault_seeds_from_fault_spec() {
        let loc = Location::mem(7);
        let trace = Trace {
            events: vec![ev(vec![loc], Some(Location::mem(8))), ev(vec![Location::mem(8)], None)],
        };
        let fault = FaultSpec::in_memory(0, 7, 3);
        let table = AclTable::from_fault(&trace, &fault);
        // m[7] corrupted before event 0; it propagates to m[8].
        assert_eq!(table.counts, vec![1, 0]);
        assert_eq!(table.births.len(), 2);
    }

    #[test]
    fn result_fault_seeds_from_fault_spec() {
        let loc = Location::mem(7);
        let trace = Trace {
            events: vec![ev(vec![], Some(loc)), ev(vec![loc], None)],
        };
        let fault = FaultSpec::in_result(0, 10);
        let table = AclTable::from_fault(&trace, &fault);
        assert_eq!(table.counts, vec![1, 0]);
    }

    #[test]
    fn series_downsamples() {
        let loc = Location::mem(1);
        let mut events = vec![ev(vec![], Some(loc))];
        for _ in 0..99 {
            events.push(ev(vec![loc], None));
        }
        let trace = Trace { events };
        let table = AclTable::build(&trace, &[(0, loc)]);
        assert_eq!(table.counts.len(), 100);
        let series = table.series(10);
        assert!(series.len() <= 12);
        assert_eq!(series.first().unwrap().0, 0);
        assert_eq!(series.last().unwrap().0, 99);
        assert!(table.series(0).is_empty());
    }

    #[test]
    fn clean_overwrite_of_untainted_location_is_not_a_death() {
        let loc = Location::mem(1);
        let trace = Trace {
            events: vec![ev(vec![], Some(loc)), ev(vec![loc], None)],
        };
        let table = AclTable::build(&trace, &[]);
        assert_eq!(table.counts, vec![0, 0]);
        assert!(table.deaths.is_empty());
        assert!(table.births.is_empty());
    }
}
