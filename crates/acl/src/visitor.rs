//! ACL construction as a [`TraceVisitor`]: the taint sweep consumes the
//! event stream once, so it can share a walk with any other analysis driven
//! by the same [`ftkr_vm::EventCursor`].

use ftkr_vm::{EventCtx, Location, Trace, TraceVisitor, WalkEnd};

use crate::table::{AclTable, TaintSweep};

/// Builds an [`AclTable`] from the events it visits.
///
/// The sweep needs the full trace's last-access knowledge up front (a
/// corrupted location dies at its *final* access), so the visitor is
/// constructed against the trace it will be driven over.  Feeding it a
/// different event stream than that trace's is a logic error.
pub struct AclVisitor {
    sweep: TaintSweep,
    table: AclTable,
}

impl AclVisitor {
    /// A visitor that will build the ACL table of `trace` for the given seed
    /// corruptions.
    pub fn new(trace: &Trace, seeds: &[(usize, Location)]) -> AclVisitor {
        AclVisitor {
            sweep: TaintSweep::new(trace, seeds),
            table: AclTable {
                counts: Vec::with_capacity(trace.len()),
                tainted_reads: Vec::with_capacity(trace.len()),
                ..Default::default()
            },
        }
    }

    /// The finished table (valid after the cursor delivered `on_finish`).
    pub fn into_table(self) -> AclTable {
        self.table
    }
}

impl TraceVisitor for AclVisitor {
    fn on_event(&mut self, ctx: &EventCtx<'_>) {
        self.sweep
            .step(ctx.index, ctx.event, ctx.reads, ctx.locations, &mut self.table);
    }

    fn on_finish(&mut self, end: &WalkEnd<'_>) {
        self.sweep.finish(end.locations, &mut self.table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftkr_ir::{BinKind, FunctionId, ValueId};
    use ftkr_vm::{EventCursor, EventKind, ResolvedEvent, Value};

    #[test]
    fn cursor_driven_visitor_equals_the_standalone_builder() {
        let loc = |k: u64| Location::mem(k);
        let ev = |reads: Vec<u64>, write: Option<u64>| ResolvedEvent {
            func: FunctionId(0),
            frame: 0,
            inst: ValueId(0),
            line: 1,
            kind: EventKind::Bin(BinKind::FAdd),
            reads: reads.into_iter().map(|k| (loc(k), Value::F(1.0))).collect(),
            write: write.map(|k| (loc(k), Value::F(2.0))),
        };
        let trace = Trace::from_resolved(vec![
            ev(vec![], Some(1)),
            ev(vec![1, 9], Some(2)),
            ev(vec![9], Some(1)),
            ev(vec![2], Some(3)),
        ]);
        let seeds = [(0usize, loc(1)), (1, loc(77))];

        let mut visitor = AclVisitor::new(&trace, &seeds);
        EventCursor::new(&trace).run(&mut [&mut visitor]);
        let via_cursor = visitor.into_table();
        let direct = AclTable::build(&trace, &seeds);

        assert_eq!(via_cursor.counts, direct.counts);
        assert_eq!(via_cursor.tainted_reads, direct.tainted_reads);
        assert_eq!(via_cursor.births, direct.births);
        assert_eq!(via_cursor.final_corrupted, direct.final_corrupted);
        assert_eq!(via_cursor.deaths.len(), direct.deaths.len());
        for (a, b) in via_cursor.deaths.iter().zip(&direct.deaths) {
            assert_eq!((a.event, a.location, a.cause, a.line), (b.event, b.location, b.cause, b.line));
        }
    }
}
