//! `ftkr-acl` — the Alive Corrupted Locations (ACL) table.
//!
//! Section III-C of the FlipTracker paper tracks, after every dynamic
//! instruction of a faulty run, how many corrupted locations are still
//! *alive* — i.e. will be referenced again and have not been overwritten by a
//! clean value.  A decrease in that number is the low-level signal of natural
//! fault tolerance; the instructions at which corrupted locations die are the
//! candidate members of resilience computation patterns.
//!
//! The construction is a taint analysis over the dynamic trace (the paper
//! notes the kinship with dynamic taint analysis from security research) with
//! two FlipTracker-specific twists:
//!
//! 1. locations whose value will never be referenced again are removed from
//!    the alive set (liveness comes from a backward last-use pass), and
//! 2. locations overwritten by an *uncorrupted* value are removed as well
//!    (the Data Overwriting pattern).
//!
//! [`AclTable::build`] produces the per-instruction counts (the last row of
//! the paper's Figure 3), the birth/death log of every corrupted location,
//! and the final corrupted set.
//!
//! The builder runs once per injection, which makes it the most expensive
//! analysis stage of Table-I-scale hunts; it therefore works in the trace's
//! dense [`ftkr_vm::LocationId`] space (flat last-access tables and a bitmap
//! taint set).  The original hash-based algorithm is retained in
//! [`mod@reference`] for differential testing.
//!
//! Construction is event-incremental: [`table::TaintSweep`] advances one
//! dynamic event at a time, so the sweep can ride along any
//! [`ftkr_vm::EventCursor`] walk.  [`visitor::AclVisitor`] is the
//! stand-alone packaging ([`AclTable::build`] uses it); the fused
//! per-injection pipeline in `ftkr_patterns` drives the same sweep next to
//! the six pattern detectors in a single pass.

pub mod reference;
pub mod table;
pub mod visitor;

pub use table::{AclDeath, AclTable, DeathCause, StepTaint, TaintSweep};
pub use visitor::AclVisitor;
