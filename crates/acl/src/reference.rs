//! Retained hash-based reference implementation of the ACL construction.
//!
//! This is the pre-compaction algorithm, kept verbatim in spirit: hash maps
//! keyed by resolved [`Location`]s, a hash-set taint set, and a
//! `HashMap<usize, Vec<Location>>` reverse index of death events.  It exists
//! so the optimized dense builder ([`AclTable::build`]) can be differentially
//! tested against an independent implementation — the workspace property
//! tests assert that both produce identical tables on random traces.  Do not
//! use it on large traces; it is O(hash) per operand where the dense builder
//! is O(1).

use std::collections::{HashMap, HashSet};

use ftkr_vm::{Location, Trace};

use crate::table::{AclDeath, AclTable, DeathCause};

/// Build the ACL table with the retained hash-based algorithm.  Produces the
/// same `counts`, `tainted_reads` and `final_corrupted` as
/// [`AclTable::build`], and the same `births`/`deaths` up to ordering within
/// one event (hash iteration order is unspecified; compare sorted).
pub fn build_reference(trace: &Trace, seeds: &[(usize, Location)]) -> AclTable {
    // Backward pass: last dynamic index at which each location is accessed.
    let mut last_access: HashMap<Location, usize> = HashMap::new();
    for (idx, view) in trace.iter_views() {
        for (loc, _) in view.reads() {
            last_access.insert(loc, idx);
        }
        if let Some((loc, _)) = view.write() {
            last_access.insert(loc, idx);
        }
    }
    // Reverse index: locations whose final access is at event i.
    let mut dies_at: HashMap<usize, Vec<Location>> = HashMap::new();
    for (&loc, &idx) in &last_access {
        dies_at.entry(idx).or_default().push(loc);
    }
    // Seeds grouped by event.
    let mut seeds_at: HashMap<usize, Vec<Location>> = HashMap::new();
    for &(idx, loc) in seeds {
        seeds_at.entry(idx).or_default().push(loc);
    }

    let mut tainted: HashSet<Location> = HashSet::new();
    let mut table = AclTable {
        counts: Vec::with_capacity(trace.len()),
        tainted_reads: Vec::with_capacity(trace.len()),
        ..Default::default()
    };

    let birth = |table: &mut AclTable,
                 tainted: &mut HashSet<Location>,
                 idx: usize,
                 loc: Location,
                 line: u32| {
        // A corrupted value that is never accessed from here on is born
        // dead ("tainted locations that are never used are excluded").
        let lives = matches!(last_access.get(&loc), Some(&lu) if lu >= idx);
        if !lives {
            table.births.push((idx, loc));
            table.deaths.push(AclDeath {
                event: idx,
                location: loc,
                cause: DeathCause::NeverUsedAgain,
                line,
            });
            return;
        }
        if tainted.insert(loc) {
            table.births.push((idx, loc));
        }
    };

    for (idx, view) in trace.iter_views() {
        let line = view.event().line;
        // Seed corruptions strike at this instruction.
        let seeded_here: &[Location] = seeds_at.get(&idx).map(Vec::as_slice).unwrap_or(&[]);
        for &loc in seeded_here {
            birth(&mut table, &mut tainted, idx, loc, line);
        }

        let reads_tainted = view.reads().any(|(l, _)| tainted.contains(&l));
        table.tainted_reads.push(reads_tainted);

        if let Some((wloc, _)) = view.write() {
            if reads_tainted {
                birth(&mut table, &mut tainted, idx, wloc, line);
            } else if !seeded_here.contains(&wloc) && tainted.remove(&wloc) {
                // Overwritten by a value not derived from corrupted data.
                table.deaths.push(AclDeath {
                    event: idx,
                    location: wloc,
                    cause: DeathCause::Overwritten,
                    line,
                });
            }
        }

        // Corrupted locations whose final access is this instruction will
        // never be referenced again: they die here.
        if let Some(locs) = dies_at.get(&idx) {
            for &loc in locs {
                if tainted.remove(&loc) {
                    table.deaths.push(AclDeath {
                        event: idx,
                        location: loc,
                        cause: DeathCause::NeverUsedAgain,
                        line,
                    });
                }
            }
        }

        table.counts.push(tainted.len() as u32);
    }

    let mut final_corrupted: Vec<Location> = tainted.into_iter().collect();
    final_corrupted.sort();
    table.final_corrupted = final_corrupted;
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AclTable;
    use ftkr_ir::{BinKind, FunctionId, ValueId};
    use ftkr_vm::{EventKind, ResolvedEvent, Value};

    fn ev(reads: Vec<Location>, write: Option<Location>) -> ResolvedEvent {
        ResolvedEvent {
            func: FunctionId(0),
            frame: 0,
            inst: ValueId(0),
            line: 1,
            kind: EventKind::Bin(BinKind::FAdd),
            reads: reads.into_iter().map(|l| (l, Value::F(1.0))).collect(),
            write: write.map(|l| (l, Value::F(1.0))),
        }
    }

    #[test]
    fn reference_matches_dense_builder_on_the_figure3_example() {
        let loc1 = Location::mem(1);
        let loc2 = Location::mem(2);
        let other = Location::mem(99);
        let trace = ftkr_vm::Trace::from_resolved(vec![
            ev(vec![], Some(loc1)),
            ev(vec![other], Some(other)),
            ev(vec![loc1, other], Some(loc2)),
            ev(vec![other], Some(other)),
            ev(vec![other], Some(loc1)),
            ev(vec![loc2], Some(other)),
        ]);
        let dense = AclTable::build(&trace, &[(0, loc1)]);
        let reference = build_reference(&trace, &[(0, loc1)]);
        assert_eq!(reference.counts, dense.counts);
        assert_eq!(reference.tainted_reads, dense.tainted_reads);
        assert_eq!(reference.final_corrupted, dense.final_corrupted);
        let mut db = dense.births.clone();
        let mut rb = reference.births.clone();
        db.sort();
        rb.sort();
        assert_eq!(db, rb);
    }
}
