//! Structural validation of modules.
//!
//! The verifier catches builder mistakes before a program reaches the VM:
//! dangling operands, blocks without terminators, unresolved callees, bad
//! intrinsic arities, and out-of-range block or global references.  It does
//! not perform full SSA dominance checking — the structured builder cannot
//! produce non-dominating uses — but it does reject references to void
//! instructions, which is the error an unstructured construction is most
//! likely to make.

use crate::function::Function;
use crate::inst::{Op, Operand};
use crate::module::Module;

/// A structural error found by [`verify_module`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A block has no instructions.
    EmptyBlock {
        /// Function name.
        func: String,
        /// Offending block index.
        block: u32,
    },
    /// A block's last instruction is not a terminator.
    MissingTerminator {
        /// Function name.
        func: String,
        /// Offending block index.
        block: u32,
    },
    /// A terminator appears before the end of a block.
    EarlyTerminator {
        /// Function name.
        func: String,
        /// Offending block index.
        block: u32,
    },
    /// An operand references an instruction id that does not exist.
    DanglingValue {
        /// Function name.
        func: String,
        /// Offending instruction index.
        inst: u32,
    },
    /// An operand references an instruction that does not produce a value.
    UseOfVoid {
        /// Function name.
        func: String,
        /// Offending instruction index.
        inst: u32,
    },
    /// An argument index is out of range.
    BadArgIndex {
        /// Function name.
        func: String,
        /// Offending instruction index.
        inst: u32,
    },
    /// A global id is out of range.
    BadGlobal {
        /// Function name.
        func: String,
        /// Offending instruction index.
        inst: u32,
    },
    /// A branch targets a block that does not exist.
    BadBlockTarget {
        /// Function name.
        func: String,
        /// Offending instruction index.
        inst: u32,
    },
    /// A call references a function that is not in the module.
    UnresolvedCallee {
        /// Function name.
        func: String,
        /// Name of the missing callee.
        callee: String,
    },
    /// An intrinsic call has the wrong number of arguments.
    BadIntrinsicArity {
        /// Function name.
        func: String,
        /// Offending instruction index.
        inst: u32,
    },
    /// A call passes a different number of arguments than the callee declares.
    BadCallArity {
        /// Function name.
        func: String,
        /// Callee name.
        callee: String,
    },
    /// The module has no function named `main`.
    NoMain,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::EmptyBlock { func, block } => {
                write!(f, "{func}: block bb{block} is empty")
            }
            VerifyError::MissingTerminator { func, block } => {
                write!(f, "{func}: block bb{block} does not end with a terminator")
            }
            VerifyError::EarlyTerminator { func, block } => {
                write!(f, "{func}: block bb{block} has a terminator before its end")
            }
            VerifyError::DanglingValue { func, inst } => {
                write!(f, "{func}: instruction {inst} references a missing value")
            }
            VerifyError::UseOfVoid { func, inst } => {
                write!(f, "{func}: instruction {inst} uses the result of a void instruction")
            }
            VerifyError::BadArgIndex { func, inst } => {
                write!(f, "{func}: instruction {inst} references an out-of-range argument")
            }
            VerifyError::BadGlobal { func, inst } => {
                write!(f, "{func}: instruction {inst} references an out-of-range global")
            }
            VerifyError::BadBlockTarget { func, inst } => {
                write!(f, "{func}: instruction {inst} branches to a missing block")
            }
            VerifyError::UnresolvedCallee { func, callee } => {
                write!(f, "{func}: call to unknown function `{callee}`")
            }
            VerifyError::BadIntrinsicArity { func, inst } => {
                write!(f, "{func}: instruction {inst} passes the wrong number of intrinsic arguments")
            }
            VerifyError::BadCallArity { func, callee } => {
                write!(f, "{func}: call to `{callee}` passes the wrong number of arguments")
            }
            VerifyError::NoMain => write!(f, "module has no `main` function"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Validate one function against the module it belongs to.
fn verify_function(module: &Module, func: &Function) -> Result<(), VerifyError> {
    let n_insts = func.insts.len() as u32;
    let n_blocks = func.blocks.len() as u32;
    let fname = func.name.clone();

    for (bi, block) in func.blocks.iter().enumerate() {
        if block.insts.is_empty() {
            return Err(VerifyError::EmptyBlock {
                func: fname.clone(),
                block: bi as u32,
            });
        }
        for (pos, &iid) in block.insts.iter().enumerate() {
            let inst = func.inst(iid);
            let is_last = pos + 1 == block.insts.len();
            if inst.op.is_terminator() && !is_last {
                return Err(VerifyError::EarlyTerminator {
                    func: fname.clone(),
                    block: bi as u32,
                });
            }
            if is_last && !inst.op.is_terminator() {
                return Err(VerifyError::MissingTerminator {
                    func: fname.clone(),
                    block: bi as u32,
                });
            }
        }
    }

    for (iid, inst) in func.iter_insts() {
        for operand in inst.op.operands() {
            match operand {
                Operand::Value(v) => {
                    if v.0 >= n_insts {
                        return Err(VerifyError::DanglingValue {
                            func: fname.clone(),
                            inst: iid.0,
                        });
                    }
                    if !func.inst(v).op.has_result() {
                        return Err(VerifyError::UseOfVoid {
                            func: fname.clone(),
                            inst: iid.0,
                        });
                    }
                }
                Operand::Arg(a) => {
                    if a >= func.num_args {
                        return Err(VerifyError::BadArgIndex {
                            func: fname.clone(),
                            inst: iid.0,
                        });
                    }
                }
                Operand::Global(g) => {
                    if g.index() >= module.globals.len() {
                        return Err(VerifyError::BadGlobal {
                            func: fname.clone(),
                            inst: iid.0,
                        });
                    }
                }
                Operand::ConstI(_) | Operand::ConstF(_) => {}
            }
        }
        match &inst.op {
            Op::Br { target }
                if target.0 >= n_blocks => {
                    return Err(VerifyError::BadBlockTarget {
                        func: fname.clone(),
                        inst: iid.0,
                    });
                }
            Op::CondBr { then_b, else_b, .. }
                if (then_b.0 >= n_blocks || else_b.0 >= n_blocks) => {
                    return Err(VerifyError::BadBlockTarget {
                        func: fname.clone(),
                        inst: iid.0,
                    });
                }
            Op::Call { callee, args } => match module.function_by_name(callee) {
                None => {
                    return Err(VerifyError::UnresolvedCallee {
                        func: fname.clone(),
                        callee: callee.clone(),
                    })
                }
                Some((_, target)) => {
                    if target.num_args as usize != args.len() {
                        return Err(VerifyError::BadCallArity {
                            func: fname.clone(),
                            callee: callee.clone(),
                        });
                    }
                }
            },
            Op::CallIntrinsic { intrinsic, args }
                if intrinsic.arity() != args.len() => {
                    return Err(VerifyError::BadIntrinsicArity {
                        func: fname.clone(),
                        inst: iid.0,
                    });
                }
            _ => {}
        }
    }
    Ok(())
}

/// Validate a whole module.  Called by [`Module::verify`].
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for func in &module.functions {
        verify_function(module, func)?;
    }
    Ok(())
}

/// Like [`verify_module`] but additionally requires a `main` entry point;
/// the VM calls this before running a program.
pub fn verify_executable(module: &Module) -> Result<(), VerifyError> {
    verify_module(module)?;
    if module.function_by_name("main").is_none() {
        return Err(VerifyError::NoMain);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::global::Global;
    use crate::inst::{BinKind, Inst, ValueId};
    use crate::Block;

    fn simple_module() -> Module {
        let mut m = Module::new("m");
        m.add_global(Global::zeroed_f64("g", 4));
        let mut b = FunctionBuilder::new("main");
        let x = b.fadd(Operand::ConstF(1.0), Operand::ConstF(2.0));
        let gp = b.global_addr(crate::global::GlobalId(0));
        b.store(gp, x);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn valid_module_verifies() {
        let m = simple_module();
        assert!(verify_module(&m).is_ok());
        assert!(verify_executable(&m).is_ok());
    }

    #[test]
    fn missing_main_is_rejected_for_executables() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("helper");
        b.ret(None);
        m.add_function(b.finish());
        assert!(verify_module(&m).is_ok());
        assert_eq!(verify_executable(&m), Err(VerifyError::NoMain));
    }

    #[test]
    fn dangling_value_is_rejected() {
        let mut m = Module::new("m");
        let mut f = Function::new("main", 0);
        f.insts.push(Inst::new(
            Op::Bin {
                kind: BinKind::Add,
                lhs: Operand::Value(ValueId(99)),
                rhs: Operand::ConstI(1),
            },
            1,
        ));
        f.insts.push(Inst::new(Op::Ret { value: None }, 1));
        f.blocks[0].insts = vec![ValueId(0), ValueId(1)];
        m.add_function(f);
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::DanglingValue { .. })
        ));
    }

    #[test]
    fn use_of_void_is_rejected() {
        let mut m = Module::new("m");
        let mut f = Function::new("main", 0);
        // %0: store (void), %1 uses %0.
        f.insts.push(Inst::new(
            Op::Store {
                addr: Operand::ConstI(0),
                value: Operand::ConstI(0),
            },
            1,
        ));
        f.insts.push(Inst::new(
            Op::Bin {
                kind: BinKind::Add,
                lhs: Operand::Value(ValueId(0)),
                rhs: Operand::ConstI(1),
            },
            1,
        ));
        f.insts.push(Inst::new(Op::Ret { value: None }, 1));
        f.blocks[0].insts = vec![ValueId(0), ValueId(1), ValueId(2)];
        m.add_function(f);
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::UseOfVoid { .. })
        ));
    }

    #[test]
    fn empty_block_is_rejected() {
        let mut m = Module::new("m");
        let mut f = Function::new("main", 0);
        f.insts.push(Inst::new(Op::Ret { value: None }, 1));
        f.blocks[0].insts = vec![ValueId(0)];
        f.blocks.push(Block::new("dead"));
        m.add_function(f);
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::EmptyBlock { .. })
        ));
    }

    #[test]
    fn unresolved_callee_is_rejected() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main");
        b.call("ghost", vec![]);
        b.ret(None);
        m.add_function(b.finish());
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::UnresolvedCallee { .. })
        ));
    }

    #[test]
    fn bad_call_arity_is_rejected() {
        let mut m = Module::new("m");
        let mut callee = FunctionBuilder::with_args("target", 2);
        callee.ret(None);
        m.add_function(callee.finish());
        let mut b = FunctionBuilder::new("main");
        b.call("target", vec![Operand::ConstI(1)]);
        b.ret(None);
        m.add_function(b.finish());
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::BadCallArity { .. })
        ));
    }

    #[test]
    fn bad_arg_index_is_rejected() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::with_args("main", 1);
        let a = b.arg(3);
        b.add(a, Operand::ConstI(1));
        b.ret(None);
        m.add_function(b.finish());
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::BadArgIndex { .. })
        ));
    }

    #[test]
    fn bad_global_is_rejected() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main");
        let g = b.global_addr(crate::global::GlobalId(7));
        b.load(g);
        b.ret(None);
        m.add_function(b.finish());
        assert!(matches!(verify_module(&m), Err(VerifyError::BadGlobal { .. })));
    }

    #[test]
    fn bad_intrinsic_arity_is_rejected() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main");
        b.intrinsic(crate::inst::Intrinsic::Pow, vec![Operand::ConstF(2.0)]);
        b.ret(None);
        m.add_function(b.finish());
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::BadIntrinsicArity { .. })
        ));
    }

    #[test]
    fn error_messages_render() {
        let e = VerifyError::UnresolvedCallee {
            func: "main".into(),
            callee: "ghost".into(),
        };
        assert!(e.to_string().contains("ghost"));
        assert!(VerifyError::NoMain.to_string().contains("main"));
    }
}
