//! Pre-decoded execution tables: each verified function lowered once into a
//! dense flat opcode/operand array for direct-threaded dispatch.
//!
//! The interpreter's legacy hot loop matches on heap [`Op`] enums fetched
//! through three indirections (function → block → instruction table) per
//! dynamic step.  [`DecodedModule::decode`] flattens every function into a
//! contiguous [`DInst`] array with:
//!
//! - **packed operands** ([`DOperand`]): one `u32` per operand, tagged with
//!   the operand class and indexing a per-function constant pool — no enum
//!   matching and no `Vec` clones on the call path;
//! - **pre-resolved callees**: `Op::Call`'s by-name lookup becomes a stored
//!   [`FunctionId`];
//! - **fused compare-branch superinstructions** ([`DInst::CmpBr`]): a `Cmp`
//!   immediately consumed by the block-terminating `CondBr` executes as one
//!   dispatch (the dominant loop back-edge shape);
//! - **delta-encoded source lines**: per-instruction lines are stored as
//!   `i16` deltas against the previous instruction (with an escape table for
//!   rare large jumps) and materialized only by tracing runs.
//!
//! Decoding is pure table construction: the decoded program is *semantically
//! identical* to the original — the `ftkr-vm` decoded dispatch loop is held
//! bit-identical to the legacy interpreter (traces, outputs, memory, faults)
//! by differential tests, and call frames keep their original
//! `(block, ip)` program counters so VM snapshots remain interchangeable
//! between the two paths.

use crate::block::BlockId;
use crate::function::{Function, FunctionId};
use crate::inst::{
    BinKind, CastKind, CmpKind, Intrinsic, LoopId, LoopKind, Op, Operand, OutputFormat, ValueId,
};
use crate::module::Module;

/// Operand-class tag of a [`DOperand`] (top 3 bits of the packed word).
const TAG_SHIFT: u32 = 29;
/// Payload mask of a [`DOperand`] (low 29 bits).
const PAYLOAD_MASK: u32 = (1 << TAG_SHIFT) - 1;

const TAG_VALUE: u32 = 0;
const TAG_ARG: u32 = 1;
const TAG_CONST_I: u32 = 2;
const TAG_CONST_F: u32 = 3;
const TAG_GLOBAL: u32 = 4;

/// A packed operand: 3-bit class tag plus a 29-bit payload.
///
/// | tag | payload |
/// |-----|---------|
/// | register | [`ValueId`] index |
/// | argument | argument position |
/// | int const | index into [`DecodedFunction::consts_i`] |
/// | float const | index into [`DecodedFunction::consts_f`] |
/// | global | [`crate::GlobalId`] index |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DOperand(u32);

/// Unpacked view of a [`DOperand`], produced by [`DOperand::unpack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DOperandKind {
    /// Read of the register holding instruction `ValueId(payload)`'s result.
    Value(ValueId),
    /// Read of argument `payload` of the current frame.
    Arg(u32),
    /// Integer constant at `consts_i[payload]`.
    ConstI(u32),
    /// Float constant at `consts_f[payload]`.
    ConstF(u32),
    /// Base address of global `payload`.
    Global(u32),
}

impl DOperand {
    fn pack(tag: u32, payload: u32) -> Self {
        debug_assert!(payload <= PAYLOAD_MASK, "operand payload overflows 29 bits");
        DOperand((tag << TAG_SHIFT) | payload)
    }

    /// Packed register-read operand for a [`ValueId`] (the VM uses this to
    /// run the branch half of a fused pair alone after a mid-pair snapshot
    /// restore).
    #[inline]
    pub fn reg(v: ValueId) -> DOperand {
        DOperand::pack(TAG_VALUE, v.0)
    }

    /// Unpack into the tagged view the dispatch loop matches on.
    #[inline]
    pub fn unpack(self) -> DOperandKind {
        let payload = self.0 & PAYLOAD_MASK;
        match self.0 >> TAG_SHIFT {
            TAG_VALUE => DOperandKind::Value(ValueId(payload)),
            TAG_ARG => DOperandKind::Arg(payload),
            TAG_CONST_I => DOperandKind::ConstI(payload),
            TAG_CONST_F => DOperandKind::ConstF(payload),
            _ => DOperandKind::Global(payload),
        }
    }
}

/// Span into [`DecodedFunction::args_pool`] holding a call's packed
/// arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArgSpan {
    /// First pooled operand.
    pub offset: u32,
    /// Number of operands.
    pub len: u32,
}

impl ArgSpan {
    /// The pool range covered by this span.
    pub fn range(self) -> std::ops::Range<usize> {
        self.offset as usize..(self.offset + self.len) as usize
    }
}

/// One decoded instruction: the flat, heap-free lowering of an [`Op`].
///
/// Block targets are raw block indices; `Alloca` drops its debug name and
/// `Call` its callee string (both resolved at decode time).  The fused
/// [`DInst::CmpBr`] covers *two* original instructions (the compare and the
/// block-terminating conditional branch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DInst {
    /// Binary arithmetic/logical operation.
    Bin {
        /// Opcode.
        kind: BinKind,
        /// Left operand.
        lhs: DOperand,
        /// Right operand.
        rhs: DOperand,
    },
    /// Comparison producing 0/1 (unfused form).
    Cmp {
        /// Predicate.
        kind: CmpKind,
        /// Float comparison?
        float: bool,
        /// Left operand.
        lhs: DOperand,
        /// Right operand.
        rhs: DOperand,
    },
    /// Fused compare + conditional branch superinstruction: the compare's
    /// result register is still written (later instructions may read it),
    /// then the branch consumes it — one dispatch, two dynamic steps.
    CmpBr {
        /// Predicate.
        kind: CmpKind,
        /// Float comparison?
        float: bool,
        /// Left operand.
        lhs: DOperand,
        /// Right operand.
        rhs: DOperand,
        /// Block taken when the compare is true.
        then_b: u32,
        /// Block taken when the compare is false.
        else_b: u32,
    },
    /// Numeric conversion.
    Cast {
        /// Conversion kind.
        kind: CastKind,
        /// Source operand.
        src: DOperand,
    },
    /// Ternary select.
    Select {
        /// Condition.
        cond: DOperand,
        /// Value when truthy.
        then_v: DOperand,
        /// Value when falsy.
        else_v: DOperand,
    },
    /// Memory load.
    Load {
        /// Address operand.
        addr: DOperand,
    },
    /// Memory store.
    Store {
        /// Address operand.
        addr: DOperand,
        /// Stored value.
        value: DOperand,
    },
    /// Stack allocation of `size` cells.
    Alloca {
        /// Number of 8-byte cells.
        size: u32,
    },
    /// Pointer arithmetic.
    Gep {
        /// Base pointer.
        base: DOperand,
        /// Cell index.
        index: DOperand,
    },
    /// Function call with a pre-resolved callee.
    Call {
        /// Callee function (resolved from the name at decode time).
        callee: FunctionId,
        /// Packed arguments in [`DecodedFunction::args_pool`].
        args: ArgSpan,
    },
    /// Intrinsic call.
    CallIntrinsic {
        /// Which intrinsic.
        intrinsic: Intrinsic,
        /// Packed arguments in [`DecodedFunction::args_pool`].
        args: ArgSpan,
    },
    /// Return, optionally with a value.
    Ret {
        /// Returned operand, if any.
        value: Option<DOperand>,
    },
    /// Unconditional branch.
    Br {
        /// Target block index.
        target: u32,
    },
    /// Conditional branch (unfused form).
    CondBr {
        /// Condition operand.
        cond: DOperand,
        /// Block taken when truthy.
        then_b: u32,
        /// Block taken when falsy.
        else_b: u32,
    },
    /// Program output.
    Output {
        /// Emitted operand.
        value: DOperand,
        /// Rendering format.
        format: OutputFormat,
    },
    /// Loop-entry marker.
    LoopBegin {
        /// Loop id.
        id: LoopId,
        /// Nesting depth.
        depth: u32,
        /// Loop classification.
        kind: LoopKind,
    },
    /// Loop-exit marker.
    LoopEnd {
        /// Loop id.
        id: LoopId,
    },
    /// Loop-iteration marker.
    LoopIter {
        /// Loop id.
        id: LoopId,
    },
    /// No-op.
    Nop,
}

/// Set on a [`DecodedFunction::flat_map`] entry whose linearized position is
/// the *second* original instruction (the `CondBr`) of a fused
/// [`DInst::CmpBr`] pair.  Execution normally never lands there — fused
/// dispatch advances past both — but a VM snapshot captured by the legacy
/// stepper between the compare and the branch restores to exactly that
/// position, and the dispatch loop then runs the branch half alone.
pub const FUSED_TAIL: u32 = 1 << 31;

/// Escape entry for a source-line delta that does not fit in an `i16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineEscape {
    /// Linearized instruction position.
    pub at: u32,
    /// Absolute source line at that position.
    pub line: u32,
}

/// One function lowered into dense decoded tables.
///
/// Instructions are addressed two ways: the VM keeps its original
/// `(block, ip)` program counter (snapshot-compatible with the legacy
/// interpreter) and maps it through `lin_base`/`flat_map` to a [`DInst`];
/// per-instruction metadata (original [`ValueId`], source line) is indexed by
/// the *linearized* position `lin_base[block] + ip`.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFunction {
    /// Flat decoded instruction array (fused pairs occupy one slot).
    pub code: Vec<DInst>,
    /// Prefix sums of original block lengths: linearized position of the
    /// first instruction of each block.
    pub lin_base: Vec<u32>,
    /// Linearized position → flat index into `code`, with [`FUSED_TAIL`] set
    /// on the branch half of a fused pair.
    pub flat_map: Vec<u32>,
    /// Linearized position → original instruction id (= result register).
    pub lin_iids: Vec<u32>,
    /// Delta-encoded source lines: `i16` delta per linearized position
    /// against the previous position's line (position 0 is a delta against
    /// line 0).  [`i16::MIN`] marks an escape to [`DecodedFunction::line_escapes`].
    pub line_deltas: Vec<i16>,
    /// Escape table for deltas outside the `i16` range, sorted by position.
    pub line_escapes: Vec<LineEscape>,
    /// Integer constant pool.
    pub consts_i: Vec<i64>,
    /// Float constant pool.
    pub consts_f: Vec<f64>,
    /// Packed call-argument pool (spanned by [`ArgSpan`]s).
    pub args_pool: Vec<DOperand>,
    /// Argument count (mirrors [`Function::num_args`]).
    pub num_args: u32,
    /// Static instruction count of the original function.
    pub num_insts: usize,
}

impl DecodedFunction {
    /// Materialize the absolute source line of every linearized position by
    /// prefix-summing the delta stream (tracing runs call this once per
    /// function; untraced runs never touch lines).
    pub fn materialize_lines(&self) -> Vec<u32> {
        let mut lines = Vec::with_capacity(self.line_deltas.len());
        let mut cur: i64 = 0;
        let mut esc = self.line_escapes.iter().peekable();
        for (i, &d) in self.line_deltas.iter().enumerate() {
            if d == i16::MIN {
                let e = esc
                    .next()
                    .expect("an i16::MIN delta always has an escape entry");
                debug_assert_eq!(e.at as usize, i);
                cur = i64::from(e.line);
            } else {
                cur += i64::from(d);
            }
            lines.push(u32::try_from(cur).expect("decoded lines are non-negative"));
        }
        lines
    }

    /// Linearized position of `(block, ip)`.
    #[inline]
    pub fn lin(&self, block: BlockId, ip: usize) -> usize {
        self.lin_base[block.index()] as usize + ip
    }
}

/// A module lowered into per-function decoded tables (indexable by
/// [`FunctionId`]).  Built once per module with [`DecodedModule::decode`] and
/// shared read-only by every decoded run.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedModule {
    /// Decoded functions, in [`Module`] order.
    pub functions: Vec<DecodedFunction>,
}

impl DecodedModule {
    /// Lower every function of `module` into decoded tables.
    ///
    /// The module must satisfy the same invariants the interpreter relies on
    /// (callees resolvable by name); run it through
    /// [`crate::verify::verify_module`] first.
    pub fn decode(module: &Module) -> DecodedModule {
        DecodedModule {
            functions: module
                .functions
                .iter()
                .map(|f| decode_function(module, f))
                .collect(),
        }
    }

    /// The decoded form of a function.
    #[inline]
    pub fn function(&self, id: FunctionId) -> &DecodedFunction {
        &self.functions[id.index()]
    }

    /// Approximate resident size in bytes (tables only).
    pub fn resident_bytes(&self) -> usize {
        self.functions
            .iter()
            .map(|f| {
                f.code.len() * std::mem::size_of::<DInst>()
                    + (f.lin_base.len() + f.flat_map.len() + f.lin_iids.len()) * 4
                    + f.line_deltas.len() * 2
                    + f.line_escapes.len() * std::mem::size_of::<LineEscape>()
                    + f.consts_i.len() * 8
                    + f.consts_f.len() * 8
                    + f.args_pool.len() * 4
            })
            .sum()
    }
}

struct FnDecoder<'f> {
    func: &'f Function,
    consts_i: Vec<i64>,
    consts_f: Vec<f64>,
    args_pool: Vec<DOperand>,
}

impl FnDecoder<'_> {
    fn operand(&mut self, op: Operand) -> DOperand {
        match op {
            Operand::Value(v) => DOperand::pack(TAG_VALUE, v.0),
            Operand::Arg(i) => DOperand::pack(TAG_ARG, i),
            Operand::ConstI(c) => {
                // Constant pools are deduplicated: functions reuse a handful
                // of literals across many instructions.
                let idx = self
                    .consts_i
                    .iter()
                    .position(|&x| x == c)
                    .unwrap_or_else(|| {
                        self.consts_i.push(c);
                        self.consts_i.len() - 1
                    });
                DOperand::pack(TAG_CONST_I, idx as u32)
            }
            Operand::ConstF(c) => {
                let idx = self
                    .consts_f
                    .iter()
                    .position(|&x| x.to_bits() == c.to_bits())
                    .unwrap_or_else(|| {
                        self.consts_f.push(c);
                        self.consts_f.len() - 1
                    });
                DOperand::pack(TAG_CONST_F, idx as u32)
            }
            Operand::Global(g) => DOperand::pack(TAG_GLOBAL, g.0),
        }
    }

    fn span(&mut self, args: &[Operand]) -> ArgSpan {
        let offset = u32::try_from(self.args_pool.len()).expect("≤ 2^32 pooled call arguments");
        for &a in args {
            let d = self.operand(a);
            self.args_pool.push(d);
        }
        ArgSpan {
            offset,
            len: args.len() as u32,
        }
    }

    fn lower(&mut self, module: &Module, op: &Op) -> DInst {
        match op {
            Op::Bin { kind, lhs, rhs } => DInst::Bin {
                kind: *kind,
                lhs: self.operand(*lhs),
                rhs: self.operand(*rhs),
            },
            Op::Cmp {
                kind,
                float,
                lhs,
                rhs,
            } => DInst::Cmp {
                kind: *kind,
                float: *float,
                lhs: self.operand(*lhs),
                rhs: self.operand(*rhs),
            },
            Op::Cast { kind, src } => DInst::Cast {
                kind: *kind,
                src: self.operand(*src),
            },
            Op::Select {
                cond,
                then_v,
                else_v,
            } => DInst::Select {
                cond: self.operand(*cond),
                then_v: self.operand(*then_v),
                else_v: self.operand(*else_v),
            },
            Op::Load { addr } => DInst::Load {
                addr: self.operand(*addr),
            },
            Op::Store { addr, value } => DInst::Store {
                addr: self.operand(*addr),
                value: self.operand(*value),
            },
            Op::Alloca { size, .. } => DInst::Alloca { size: *size },
            Op::Gep { base, index } => DInst::Gep {
                base: self.operand(*base),
                index: self.operand(*index),
            },
            Op::Call { callee, args } => {
                let (callee_id, _) = module
                    .function_by_name(callee)
                    .expect("verified callee exists");
                DInst::Call {
                    callee: callee_id,
                    args: self.span(args),
                }
            }
            Op::CallIntrinsic { intrinsic, args } => DInst::CallIntrinsic {
                intrinsic: *intrinsic,
                args: self.span(args),
            },
            Op::Ret { value } => DInst::Ret {
                value: value.map(|v| self.operand(v)),
            },
            Op::Br { target } => DInst::Br { target: target.0 },
            Op::CondBr {
                cond,
                then_b,
                else_b,
            } => DInst::CondBr {
                cond: self.operand(*cond),
                then_b: then_b.0,
                else_b: else_b.0,
            },
            Op::Output { value, format } => DInst::Output {
                value: self.operand(*value),
                format: *format,
            },
            Op::LoopBegin {
                id, depth, kind, ..
            } => DInst::LoopBegin {
                id: *id,
                depth: *depth,
                kind: *kind,
            },
            Op::LoopEnd { id } => DInst::LoopEnd { id: *id },
            Op::LoopIter { id } => DInst::LoopIter { id: *id },
            Op::Nop => DInst::Nop,
        }
    }
}

/// True when the instruction at block position `i` is a `Cmp` whose result is
/// consumed by the immediately following block-terminating `CondBr` — the
/// fusable superinstruction shape.
fn fusable(func: &Function, block_insts: &[ValueId], i: usize) -> bool {
    if i + 2 != block_insts.len() {
        // The CondBr must be the block terminator, i.e. the pair must sit at
        // the end of the block.
        return false;
    }
    let cmp_id = block_insts[i];
    if !matches!(func.inst(cmp_id).op, Op::Cmp { .. }) {
        return false;
    }
    match &func.inst(block_insts[i + 1]).op {
        Op::CondBr { cond, .. } => *cond == Operand::Value(cmp_id),
        _ => false,
    }
}

fn decode_function(module: &Module, func: &Function) -> DecodedFunction {
    let mut d = FnDecoder {
        func,
        consts_i: Vec::new(),
        consts_f: Vec::new(),
        args_pool: Vec::new(),
    };
    let total: usize = func.blocks.iter().map(|b| b.insts.len()).sum();
    let mut code = Vec::with_capacity(total);
    let mut lin_base = Vec::with_capacity(func.blocks.len());
    let mut flat_map = Vec::with_capacity(total);
    let mut lin_iids = Vec::with_capacity(total);
    let mut line_deltas = Vec::with_capacity(total);
    let mut line_escapes = Vec::new();
    let mut prev_line: i64 = 0;

    for block in &func.blocks {
        lin_base.push(u32::try_from(flat_map.len()).expect("≤ 2^32 instructions per function"));
        let mut i = 0;
        while i < block.insts.len() {
            let iid = block.insts[i];
            let inst = func.inst(iid);
            let flat = code.len() as u32;
            let lin = flat_map.len() as u32;

            // Delta-encode this position's source line.
            let delta = i64::from(inst.line) - prev_line;
            if delta > i64::from(i16::MAX) || delta <= i64::from(i16::MIN) {
                line_deltas.push(i16::MIN);
                line_escapes.push(LineEscape {
                    at: lin,
                    line: inst.line,
                });
            } else {
                line_deltas.push(delta as i16);
            }
            prev_line = i64::from(inst.line);

            if fusable(d.func, &block.insts, i) {
                let br_id = block.insts[i + 1];
                let &Op::Cmp {
                    kind,
                    float,
                    lhs,
                    rhs,
                } = &inst.op
                else {
                    unreachable!("fusable checked the cmp shape");
                };
                let &Op::CondBr { then_b, else_b, .. } = &func.inst(br_id).op else {
                    unreachable!("fusable checked the condbr shape");
                };
                code.push(DInst::CmpBr {
                    kind,
                    float,
                    lhs: d.operand(lhs),
                    rhs: d.operand(rhs),
                    then_b: then_b.0,
                    else_b: else_b.0,
                });
                flat_map.push(flat);
                lin_iids.push(iid.0);
                // The branch half: its own line delta and metadata, but its
                // flat entry points back at the fused slot with FUSED_TAIL.
                let br_line = func.inst(br_id).line;
                let br_delta = i64::from(br_line) - prev_line;
                if br_delta > i64::from(i16::MAX) || br_delta <= i64::from(i16::MIN) {
                    line_deltas.push(i16::MIN);
                    line_escapes.push(LineEscape {
                        at: lin + 1,
                        line: br_line,
                    });
                } else {
                    line_deltas.push(br_delta as i16);
                }
                prev_line = i64::from(br_line);
                flat_map.push(flat | FUSED_TAIL);
                lin_iids.push(br_id.0);
                i += 2;
            } else {
                code.push(d.lower(module, &inst.op));
                flat_map.push(flat);
                lin_iids.push(iid.0);
                i += 1;
            }
        }
    }

    DecodedFunction {
        code,
        lin_base,
        flat_map,
        lin_iids,
        line_deltas,
        line_escapes,
        consts_i: d.consts_i,
        consts_f: d.consts_f,
        args_pool: d.args_pool,
        num_args: func.num_args,
        num_insts: func.num_insts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::global::Global;

    fn loop_module() -> Module {
        let mut m = Module::new("loop");
        let g = m.add_global(Global::zeroed_i64("sum", 1));
        let mut b = FunctionBuilder::new("main");
        let acc = b.alloca("acc", 1);
        let zero = b.const_i64(0);
        b.store(acc, zero);
        let ten = b.const_i64(10);
        b.main_for("main_loop", zero, ten, |b, i| {
            let cur = b.load(acc);
            let next = b.add(cur, i);
            b.store(acc, next);
        });
        let total = b.load(acc);
        let gaddr = b.global_addr(g);
        b.store(gaddr, total);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn decode_covers_every_instruction_once() {
        let m = loop_module();
        let dm = DecodedModule::decode(&m);
        let f = &m.functions[0];
        let df = &dm.functions[0];
        let total: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
        assert_eq!(df.flat_map.len(), total);
        assert_eq!(df.lin_iids.len(), total);
        assert_eq!(df.line_deltas.len(), total);
        // Fused pairs shrink the flat code array below the original count.
        assert!(df.code.len() <= total);
        // Every flat index referenced by the map exists.
        for &p in &df.flat_map {
            assert!(((p & !FUSED_TAIL) as usize) < df.code.len());
        }
    }

    #[test]
    fn loop_back_edge_is_fused() {
        let m = loop_module();
        let dm = DecodedModule::decode(&m);
        let fused = dm.functions[0]
            .code
            .iter()
            .filter(|i| matches!(i, DInst::CmpBr { .. }))
            .count();
        assert!(fused >= 1, "the for-loop header compare+branch must fuse");
        // Each fused slot has exactly one FUSED_TAIL map entry.
        let tails = dm.functions[0]
            .flat_map
            .iter()
            .filter(|&&p| p & FUSED_TAIL != 0)
            .count();
        assert_eq!(tails, fused);
    }

    #[test]
    fn delta_lines_materialize_to_the_original_lines() {
        let m = loop_module();
        let dm = DecodedModule::decode(&m);
        let f = &m.functions[0];
        let df = &dm.functions[0];
        let lines = df.materialize_lines();
        let mut lin = 0;
        for block in &f.blocks {
            for &iid in &block.insts {
                assert_eq!(lines[lin], f.inst(iid).line, "line at lin {lin}");
                assert_eq!(df.lin_iids[lin], iid.0);
                lin += 1;
            }
        }
    }

    #[test]
    fn line_escape_handles_large_deltas() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main");
        b.set_line(1);
        let x = b.const_i64(1);
        let y = b.add(x, x);
        b.set_line(200_000);
        let z = b.add(y, y);
        b.set_line(2);
        b.output(z, OutputFormat::Integer);
        b.ret(None);
        m.add_function(b.finish());
        let dm = DecodedModule::decode(&m);
        let df = &dm.functions[0];
        assert!(!df.line_escapes.is_empty(), "a 200k jump cannot fit in i16");
        let lines = df.materialize_lines();
        let f = &m.functions[0];
        let mut lin = 0;
        for block in &f.blocks {
            for &iid in &block.insts {
                assert_eq!(lines[lin], f.inst(iid).line);
                lin += 1;
            }
        }
    }

    #[test]
    fn operands_pack_and_unpack() {
        assert_eq!(
            DOperand::pack(TAG_VALUE, 12).unpack(),
            DOperandKind::Value(ValueId(12))
        );
        assert_eq!(DOperand::pack(TAG_ARG, 3).unpack(), DOperandKind::Arg(3));
        assert_eq!(
            DOperand::pack(TAG_CONST_I, 0).unpack(),
            DOperandKind::ConstI(0)
        );
        assert_eq!(
            DOperand::pack(TAG_CONST_F, 7).unpack(),
            DOperandKind::ConstF(7)
        );
        assert_eq!(
            DOperand::pack(TAG_GLOBAL, 2).unpack(),
            DOperandKind::Global(2)
        );
    }
}
