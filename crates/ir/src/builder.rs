//! Structured-control-flow builder for [`crate::Function`]s.
//!
//! The benchmark kernels in `ftkr-apps` are written against this API.  It
//! mirrors how a C front end lowers structured code to LLVM IR: loop bodies
//! and branch arms are closures, induction variables live in `alloca` slots
//! (exactly what `clang -O0` produces), and every emitted instruction carries
//! the current source line so the analyses can report pattern locations back
//! in terms of the original benchmark source, as Table I of the paper does.

use crate::block::{Block, BlockId};
use crate::function::{Function, LoopInfo};
use crate::global::GlobalId;
use crate::inst::{
    BinKind, CastKind, CmpKind, Inst, Intrinsic, LoopId, LoopKind, Op, Operand, OutputFormat,
    ValueId,
};

/// Builds one function with structured control flow.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur_block: BlockId,
    line: u32,
    next_loop: u32,
    loop_depth: u32,
}

impl FunctionBuilder {
    /// Start building a function with no arguments.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_args(name, 0)
    }

    /// Start building a function with `num_args` arguments.
    pub fn with_args(name: impl Into<String>, num_args: u32) -> Self {
        FunctionBuilder {
            func: Function::new(name, num_args),
            cur_block: BlockId(0),
            line: 1,
            next_loop: 0,
            loop_depth: 0,
        }
    }

    /// Set the source line attributed to subsequently emitted instructions.
    pub fn set_line(&mut self, line: u32) -> &mut Self {
        self.line = line;
        self
    }

    /// Current source line.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// Current loop nesting depth (0 outside any loop).
    pub fn loop_depth(&self) -> u32 {
        self.loop_depth
    }

    /// Finish the function.  If the current block lacks a terminator a
    /// `ret void` is appended so the result always verifies.
    pub fn finish(mut self) -> Function {
        let needs_ret = match self.func.blocks[self.cur_block.index()].last() {
            Some(last) => !self.func.inst(last).op.is_terminator(),
            None => true,
        };
        if needs_ret {
            self.push(Op::Ret { value: None });
        }
        self.func
    }

    // ----- raw emission --------------------------------------------------

    /// Append an instruction to the current block, returning the id of the
    /// SSA register it defines (also returned for void instructions so
    /// callers can ignore it uniformly).
    pub fn push(&mut self, op: Op) -> ValueId {
        let id = ValueId(self.func.insts.len() as u32);
        self.func.insts.push(Inst::new(op, self.line));
        self.func.blocks[self.cur_block.index()].insts.push(id);
        id
    }

    fn push_val(&mut self, op: Op) -> Operand {
        Operand::Value(self.push(op))
    }

    fn new_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block::new(label));
        id
    }

    fn switch_to(&mut self, block: BlockId) {
        self.cur_block = block;
    }

    // ----- operands ------------------------------------------------------

    /// Integer immediate.
    pub fn const_i64(&self, v: i64) -> Operand {
        Operand::ConstI(v)
    }

    /// Floating immediate.
    pub fn const_f64(&self, v: f64) -> Operand {
        Operand::ConstF(v)
    }

    /// The `i`-th function argument.
    pub fn arg(&self, i: u32) -> Operand {
        Operand::Arg(i)
    }

    /// The base address of a module global.
    pub fn global_addr(&self, g: GlobalId) -> Operand {
        Operand::Global(g)
    }

    // ----- arithmetic ----------------------------------------------------

    /// Generic binary operation.
    pub fn bin(&mut self, kind: BinKind, lhs: Operand, rhs: Operand) -> Operand {
        self.push_val(Op::Bin { kind, lhs, rhs })
    }

    /// Integer add.
    pub fn add(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::Add, a, b)
    }
    /// Integer subtract.
    pub fn sub(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::Sub, a, b)
    }
    /// Integer multiply.
    pub fn mul(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::Mul, a, b)
    }
    /// Integer divide.
    pub fn sdiv(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::SDiv, a, b)
    }
    /// Integer remainder.
    pub fn srem(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::SRem, a, b)
    }
    /// Float add.
    pub fn fadd(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::FAdd, a, b)
    }
    /// Float subtract.
    pub fn fsub(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::FSub, a, b)
    }
    /// Float multiply.
    pub fn fmul(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::FMul, a, b)
    }
    /// Float divide.
    pub fn fdiv(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::FDiv, a, b)
    }
    /// Bitwise and.
    pub fn and(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::And, a, b)
    }
    /// Bitwise or.
    pub fn or(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::Or, a, b)
    }
    /// Bitwise xor.
    pub fn xor(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::Xor, a, b)
    }
    /// Shift left.
    pub fn shl(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::Shl, a, b)
    }
    /// Logical shift right.
    pub fn lshr(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::LShr, a, b)
    }
    /// Arithmetic shift right.
    pub fn ashr(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::AShr, a, b)
    }
    /// Integer minimum.
    pub fn smin(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::SMin, a, b)
    }
    /// Integer maximum.
    pub fn smax(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::SMax, a, b)
    }
    /// Float minimum.
    pub fn fmin(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::FMin, a, b)
    }
    /// Float maximum.
    pub fn fmax(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinKind::FMax, a, b)
    }

    /// Integer comparison producing 0/1.
    pub fn icmp(&mut self, kind: CmpKind, lhs: Operand, rhs: Operand) -> Operand {
        self.push_val(Op::Cmp {
            kind,
            float: false,
            lhs,
            rhs,
        })
    }

    /// Floating comparison producing 0/1.
    pub fn fcmp(&mut self, kind: CmpKind, lhs: Operand, rhs: Operand) -> Operand {
        self.push_val(Op::Cmp {
            kind,
            float: true,
            lhs,
            rhs,
        })
    }

    /// Conversion.
    pub fn cast(&mut self, kind: CastKind, src: Operand) -> Operand {
        self.push_val(Op::Cast { kind, src })
    }

    /// f64 -> i64 truncation.
    pub fn fptosi(&mut self, src: Operand) -> Operand {
        self.cast(CastKind::FpToSi, src)
    }
    /// i64 -> f64 conversion.
    pub fn sitofp(&mut self, src: Operand) -> Operand {
        self.cast(CastKind::SiToFp, src)
    }
    /// Keep only the low 32 bits of an integer.
    pub fn trunc_i32(&mut self, src: Operand) -> Operand {
        self.cast(CastKind::TruncI32, src)
    }
    /// Round an f64 to f32 precision.
    pub fn fpround32(&mut self, src: Operand) -> Operand {
        self.cast(CastKind::FpRound32, src)
    }

    /// Branch-free select.
    pub fn select(&mut self, cond: Operand, then_v: Operand, else_v: Operand) -> Operand {
        self.push_val(Op::Select {
            cond,
            then_v,
            else_v,
        })
    }

    // ----- memory --------------------------------------------------------

    /// Allocate `size` cells in the current frame and return the base pointer.
    pub fn alloca(&mut self, name: impl Into<String>, size: u32) -> Operand {
        self.push_val(Op::Alloca {
            size,
            name: name.into(),
        })
    }

    /// Pointer arithmetic `base + index` (in 8-byte cells).
    pub fn gep(&mut self, base: Operand, index: Operand) -> Operand {
        self.push_val(Op::Gep { base, index })
    }

    /// Load the cell at `addr`.
    pub fn load(&mut self, addr: Operand) -> Operand {
        self.push_val(Op::Load { addr })
    }

    /// Store `value` into the cell at `addr`.
    pub fn store(&mut self, addr: Operand, value: Operand) {
        self.push(Op::Store { addr, value });
    }

    /// Convenience: `load(gep(base, index))`.
    pub fn load_idx(&mut self, base: Operand, index: Operand) -> Operand {
        let p = self.gep(base, index);
        self.load(p)
    }

    /// Convenience: `store(gep(base, index), value)`.
    pub fn store_idx(&mut self, base: Operand, index: Operand, value: Operand) {
        let p = self.gep(base, index);
        self.store(p, value);
    }

    // ----- calls and output ---------------------------------------------

    /// Call another function of the module by name.
    pub fn call(&mut self, callee: impl Into<String>, args: Vec<Operand>) -> Operand {
        self.push_val(Op::Call {
            callee: callee.into(),
            args,
        })
    }

    /// Call a math intrinsic.
    pub fn intrinsic(&mut self, intrinsic: Intrinsic, args: Vec<Operand>) -> Operand {
        self.push_val(Op::CallIntrinsic { intrinsic, args })
    }

    /// `sqrt(x)`.
    pub fn sqrt(&mut self, x: Operand) -> Operand {
        self.intrinsic(Intrinsic::Sqrt, vec![x])
    }
    /// `fabs(x)`.
    pub fn fabs(&mut self, x: Operand) -> Operand {
        self.intrinsic(Intrinsic::Fabs, vec![x])
    }
    /// `pow(x, y)`.
    pub fn pow(&mut self, x: Operand, y: Operand) -> Operand {
        self.intrinsic(Intrinsic::Pow, vec![x, y])
    }

    /// Emit a value to the program's output stream.
    pub fn output(&mut self, value: Operand, format: OutputFormat) {
        self.push(Op::Output { value, format });
    }

    /// Return from the function.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.push(Op::Ret { value });
    }

    // ----- structured control flow ----------------------------------------

    /// `if (cond) { then }`.
    pub fn if_then(&mut self, cond: Operand, then_body: impl FnOnce(&mut Self)) {
        let then_b = self.new_block("then");
        let join_b = self.new_block("join");
        self.push(Op::CondBr {
            cond,
            then_b,
            else_b: join_b,
        });
        self.switch_to(then_b);
        then_body(self);
        self.branch_to_if_open(join_b);
        self.switch_to(join_b);
    }

    /// `if (cond) { then } else { otherwise }`.
    pub fn if_then_else(
        &mut self,
        cond: Operand,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) {
        let then_b = self.new_block("then");
        let else_b = self.new_block("else");
        let join_b = self.new_block("join");
        self.push(Op::CondBr {
            cond,
            then_b,
            else_b,
        });
        self.switch_to(then_b);
        then_body(self);
        self.branch_to_if_open(join_b);
        self.switch_to(else_b);
        else_body(self);
        self.branch_to_if_open(join_b);
        self.switch_to(join_b);
    }

    fn branch_to_if_open(&mut self, target: BlockId) {
        let open = match self.func.blocks[self.cur_block.index()].last() {
            Some(last) => !self.func.inst(last).op.is_terminator(),
            None => true,
        };
        if open {
            self.push(Op::Br { target });
        }
    }

    /// General `while` loop.  `cond` is evaluated in the header block on
    /// every iteration; `body` runs while it is non-zero.  Returns the
    /// [`LoopId`] of the created loop.
    pub fn while_loop(
        &mut self,
        name: impl Into<String>,
        kind: LoopKind,
        cond: impl FnOnce(&mut Self) -> Operand,
        body: impl FnOnce(&mut Self),
    ) -> LoopId {
        let name = name.into();
        let id = LoopId(self.next_loop);
        self.next_loop += 1;
        let depth = self.loop_depth;
        let line_start = self.line;

        self.push(Op::LoopBegin {
            id,
            depth,
            kind,
            name: name.clone(),
        });

        let header = self.new_block(format!("{name}.header"));
        let body_b = self.new_block(format!("{name}.body"));
        let exit_b = self.new_block(format!("{name}.exit"));

        self.push(Op::Br { target: header });
        self.switch_to(header);
        let c = cond(self);
        self.push(Op::CondBr {
            cond: c,
            then_b: body_b,
            else_b: exit_b,
        });

        self.switch_to(body_b);
        self.push(Op::LoopIter { id });
        self.loop_depth += 1;
        body(self);
        self.loop_depth -= 1;
        self.branch_to_if_open(header);

        self.switch_to(exit_b);
        self.push(Op::LoopEnd { id });

        let line_end = self.line;
        self.func.loops.push(LoopInfo {
            id,
            name,
            depth,
            kind,
            line_start,
            line_end,
        });
        id
    }

    /// Counted loop `for (i = start; i < end; i += step)`.  The body closure
    /// receives the current induction value as an `i64` operand.
    pub fn for_loop(
        &mut self,
        name: impl Into<String>,
        kind: LoopKind,
        start: Operand,
        end: Operand,
        step: i64,
        body: impl FnOnce(&mut Self, Operand),
    ) -> LoopId {
        let name = name.into();
        let slot = self.alloca(format!("{name}.iv"), 1);
        self.store(slot, start);
        self.while_loop(
            name,
            kind,
            |b| {
                let iv = b.load(slot);
                b.icmp(CmpKind::Lt, iv, end)
            },
            |b| {
                let iv = b.load(slot);
                body(b, iv);
                let next = b.add(iv, Operand::ConstI(step));
                b.store(slot, next);
            },
        )
    }

    /// Counted first-level inner loop (the default code-region granularity of
    /// the paper).
    pub fn region_for(
        &mut self,
        name: impl Into<String>,
        start: Operand,
        end: Operand,
        body: impl FnOnce(&mut Self, Operand),
    ) -> LoopId {
        self.for_loop(name, LoopKind::Inner, start, end, 1, body)
    }

    /// Counted main loop (depth-0 loop of the program).
    pub fn main_for(
        &mut self,
        name: impl Into<String>,
        start: Operand,
        end: Operand,
        body: impl FnOnce(&mut Self, Operand),
    ) -> LoopId {
        self.for_loop(name, LoopKind::Main, start, end, 1, body)
    }

    /// Read-only access to the function under construction (for tests).
    pub fn peek(&self) -> &Function {
        &self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;

    #[test]
    fn finish_appends_missing_return() {
        let b = FunctionBuilder::new("empty");
        let f = b.finish();
        assert_eq!(f.num_insts(), 1);
        assert!(matches!(f.insts[0].op, Op::Ret { value: None }));
    }

    #[test]
    fn if_then_else_creates_three_blocks_and_terminators() {
        let mut b = FunctionBuilder::new("branchy");
        let c = b.icmp(CmpKind::Lt, Operand::ConstI(1), Operand::ConstI(2));
        b.if_then_else(
            c,
            |b| {
                b.add(Operand::ConstI(1), Operand::ConstI(2));
            },
            |b| {
                b.add(Operand::ConstI(3), Operand::ConstI(4));
            },
        );
        b.ret(None);
        let f = b.finish();
        // entry + then + else + join
        assert_eq!(f.blocks.len(), 4);
        let mut m = Module::new("m");
        m.add_function(f);
        assert!(m.verify().is_ok());
    }

    #[test]
    fn for_loop_emits_markers_and_loop_info() {
        let mut b = FunctionBuilder::new("looper");
        b.set_line(10);
        let zero = b.const_i64(0);
        let ten = b.const_i64(10);
        b.for_loop("body", LoopKind::Inner, zero, ten, 1, |b, iv| {
            b.add(iv, Operand::ConstI(1));
        });
        b.set_line(20);
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.loops.len(), 1);
        assert_eq!(f.loops[0].name, "body");
        assert_eq!(f.loops[0].line_start, 10);
        assert!(f.count_insts(|op| matches!(op, Op::LoopBegin { .. })) == 1);
        assert!(f.count_insts(|op| matches!(op, Op::LoopEnd { .. })) == 1);
        assert!(f.count_insts(|op| matches!(op, Op::LoopIter { .. })) == 1);
        let mut m = Module::new("m");
        m.add_function(f);
        assert!(m.verify().is_ok());
    }

    #[test]
    fn nested_loops_track_depth() {
        let mut b = FunctionBuilder::new("nest");
        let zero = b.const_i64(0);
        let three = b.const_i64(3);
        b.main_for("outer", zero, three, |b, _i| {
            let z = b.const_i64(0);
            let two = b.const_i64(2);
            b.region_for("inner", z, two, |b, _j| {
                b.add(Operand::ConstI(1), Operand::ConstI(1));
            });
        });
        let f = b.finish();
        assert_eq!(f.loops.len(), 2);
        let outer = f.loops.iter().find(|l| l.name == "outer").unwrap();
        let inner = f.loops.iter().find(|l| l.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.kind, LoopKind::Main);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.kind, LoopKind::Inner);
    }

    #[test]
    fn store_and_load_helpers_compose() {
        let mut b = FunctionBuilder::new("mem");
        let buf = b.alloca("buf", 4);
        let idx = b.const_i64(2);
        let val = b.const_f64(1.5);
        b.store_idx(buf, idx, val);
        let out = b.load_idx(buf, idx);
        b.output(out, OutputFormat::Full);
        b.ret(None);
        let f = b.finish();
        let mut m = Module::new("m");
        m.add_function(f);
        assert!(m.verify().is_ok());
    }
}
