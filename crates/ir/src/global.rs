//! Module-level global arrays.
//!
//! Globals model the large data objects HPC programs update in their inner
//! loops (meshes, residual vectors, key arrays, feature matrices).  Each
//! global is a contiguous run of 8-byte cells in VM memory; the VM assigns
//! base addresses at program load.

use serde::{Deserialize, Serialize};

/// Index of a global within a [`crate::Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalId(pub u32);

impl GlobalId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Initial contents of a global.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GlobalInit {
    /// All cells hold the integer zero.
    ZeroI64,
    /// All cells hold the floating-point zero.
    ZeroF64,
    /// Explicit integer contents (length defines the size).
    I64(Vec<i64>),
    /// Explicit floating-point contents (length defines the size).
    F64(Vec<f64>),
}

/// A module-level array of 8-byte cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Global {
    /// Debug name (e.g. `"u"`, `"key_array"`).
    pub name: String,
    /// Number of cells.
    pub size: u32,
    /// Initial contents.
    pub init: GlobalInit,
}

impl Global {
    /// An integer-zeroed global of `size` cells.
    pub fn zeroed_i64(name: impl Into<String>, size: u32) -> Self {
        Global {
            name: name.into(),
            size,
            init: GlobalInit::ZeroI64,
        }
    }

    /// A float-zeroed global of `size` cells.
    pub fn zeroed_f64(name: impl Into<String>, size: u32) -> Self {
        Global {
            name: name.into(),
            size,
            init: GlobalInit::ZeroF64,
        }
    }

    /// A global initialized with the given integers.
    pub fn with_i64(name: impl Into<String>, data: Vec<i64>) -> Self {
        Global {
            name: name.into(),
            size: data.len() as u32,
            init: GlobalInit::I64(data),
        }
    }

    /// A global initialized with the given floats.
    pub fn with_f64(name: impl Into<String>, data: Vec<f64>) -> Self {
        Global {
            name: name.into(),
            size: data.len() as u32,
            init: GlobalInit::F64(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_sizes() {
        assert_eq!(Global::zeroed_f64("u", 16).size, 16);
        assert_eq!(Global::with_i64("k", vec![1, 2, 3]).size, 3);
        assert_eq!(Global::with_f64("x", vec![0.5; 5]).size, 5);
        assert_eq!(GlobalId(4).index(), 4);
    }
}
