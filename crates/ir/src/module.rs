//! Modules: the top-level container of globals and functions.

use serde::{Deserialize, Serialize};

use crate::function::{Function, FunctionId};
use crate::global::{Global, GlobalId};
use crate::verify::{verify_module, VerifyError};

/// A whole program: globals plus functions.  Execution starts at the function
/// named `main` unless the VM is told otherwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name (used in reports).
    pub name: String,
    /// Global arrays.
    pub globals: Vec<Global>,
    /// Functions.
    pub functions: Vec<Function>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            globals: Vec::new(),
            functions: Vec::new(),
        }
    }

    /// Add a global; returns its id.
    pub fn add_global(&mut self, global: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(global);
        id
    }

    /// Add a function; returns its id.
    pub fn add_function(&mut self, function: Function) -> FunctionId {
        let id = FunctionId(self.functions.len() as u32);
        self.functions.push(function);
        id
    }

    /// Look up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<(FunctionId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FunctionId(i as u32), f))
    }

    /// Look up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<(GlobalId, &Global)> {
        self.globals
            .iter()
            .enumerate()
            .find(|(_, g)| g.name == name)
            .map(|(i, g)| (GlobalId(i as u32), g))
    }

    /// The function behind an id.
    pub fn function(&self, id: FunctionId) -> &Function {
        &self.functions[id.index()]
    }

    /// The global behind an id.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Total number of static instructions across all functions.
    pub fn num_insts(&self) -> usize {
        self.functions.iter().map(|f| f.num_insts()).sum()
    }

    /// Structural validation (see [`crate::verify`]).
    pub fn verify(&self) -> Result<(), VerifyError> {
        verify_module(self)
    }

    /// Render the whole module as text.
    pub fn to_text(&self) -> String {
        let mut s = format!("; module {}\n", self.name);
        for (i, g) in self.globals.iter().enumerate() {
            s.push_str(&format!("@g{} = global [{} x i64] ; {}\n", i, g.size, g.name));
        }
        for f in &self.functions {
            s.push('\n');
            s.push_str(&f.to_text());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_works() {
        let mut m = Module::new("m");
        let g = m.add_global(Global::zeroed_f64("u", 4));
        let f = m.add_function(Function::new("main", 0));
        assert_eq!(m.global_by_name("u").unwrap().0, g);
        assert_eq!(m.function_by_name("main").unwrap().0, f);
        assert!(m.global_by_name("missing").is_none());
        assert!(m.function_by_name("missing").is_none());
        assert!(m.to_text().contains("module m"));
    }
}
