//! `ftkr-ir` — a compact, LLVM-like SSA intermediate representation.
//!
//! The FlipTracker paper analyses *dynamic traces of LLVM IR instructions*
//! produced by LLVM-Tracer.  This crate provides the equivalent substrate for
//! the Rust reproduction: a small register-based IR with basic blocks,
//! explicit memory operations, structured loop markers, and per-instruction
//! source line numbers.  Programs are built with [`builder::FunctionBuilder`]
//! (a structured-control-flow front end) and executed by the `ftkr-vm`
//! interpreter, which natively emits the dynamic instruction trace that all
//! downstream FlipTracker analyses (DDDG, ACL, pattern detection, fault
//! injection) consume.
//!
//! # Quick tour
//!
//! ```
//! use ftkr_ir::prelude::*;
//!
//! let mut module = Module::new("demo");
//! let g = module.add_global(Global::zeroed_f64("acc", 1));
//! let mut f = FunctionBuilder::new("main");
//! f.set_line(10);
//! let base = f.global_addr(g);
//! let v = f.const_f64(2.0);
//! f.store(base, v);
//! f.ret(None);
//! module.add_function(f.finish());
//! assert!(module.verify().is_ok());
//! ```

pub mod block;
pub mod builder;
pub mod decode;
pub mod function;
pub mod global;
pub mod inst;
pub mod module;
pub mod types;
pub mod verify;

pub use block::{Block, BlockId};
pub use builder::FunctionBuilder;
pub use decode::{DInst, DOperand, DOperandKind, DecodedFunction, DecodedModule};
pub use function::{Function, FunctionId};
pub use global::{Global, GlobalId};
pub use inst::{
    BinKind, CastKind, CmpKind, Inst, Intrinsic, LoopId, LoopKind, Op, Operand, OutputFormat,
    ValueId,
};
pub use module::Module;
pub use types::Ty;
pub use verify::VerifyError;

/// Convenience re-exports for building and inspecting programs.
pub mod prelude {
    pub use crate::builder::FunctionBuilder;
    pub use crate::function::{Function, FunctionId};
    pub use crate::global::{Global, GlobalId};
    pub use crate::inst::{
        BinKind, CastKind, CmpKind, Inst, Intrinsic, LoopId, LoopKind, Op, Operand, OutputFormat,
        ValueId,
    };
    pub use crate::module::Module;
    pub use crate::types::Ty;
    pub use crate::{Block, BlockId};
}
