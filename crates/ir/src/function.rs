//! Functions: instruction tables plus basic blocks and loop metadata.

use serde::{Deserialize, Serialize};

use crate::block::{Block, BlockId};
use crate::inst::{Inst, LoopId, LoopKind, Op, ValueId};

/// Index of a function within a [`crate::Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FunctionId(pub u32);

impl FunctionId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static description of a structured loop inside a function, recorded by the
/// builder.  The trace partitioner uses this table to map dynamic
/// `LoopBegin`/`LoopEnd` markers back to named code regions and source lines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopInfo {
    /// Loop id (unique within the function).
    pub id: LoopId,
    /// Region name (e.g. `cg_b`).
    pub name: String,
    /// Nesting depth: 0 for the main loop, 1 for first-level inner loops.
    pub depth: u32,
    /// Classification.
    pub kind: LoopKind,
    /// First source line of the loop body.
    pub line_start: u32,
    /// Last source line of the loop body.
    pub line_end: u32,
}

/// A function: a flat instruction table, basic blocks referencing it, and
/// loop metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name (callees are resolved by name).
    pub name: String,
    /// Number of arguments.
    pub num_args: u32,
    /// Instruction table; `ValueId(i)` is `insts[i]`.
    pub insts: Vec<Inst>,
    /// Basic blocks; `BlockId(i)` is `blocks[i]`.  Block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Structured-loop metadata recorded by the builder.
    pub loops: Vec<LoopInfo>,
}

impl Function {
    /// Create an empty function with one (entry) block.
    pub fn new(name: impl Into<String>, num_args: u32) -> Self {
        Function {
            name: name.into(),
            num_args,
            insts: Vec::new(),
            blocks: vec![Block::new("entry")],
            loops: Vec::new(),
        }
    }

    /// The instruction behind a [`ValueId`].
    pub fn inst(&self, id: ValueId) -> &Inst {
        &self.insts[id.index()]
    }

    /// The block behind a [`BlockId`].
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Static count of instructions.
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Loop metadata for a loop id, if recorded.
    pub fn loop_info(&self, id: LoopId) -> Option<&LoopInfo> {
        self.loops.iter().find(|l| l.id == id)
    }

    /// Iterate over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Iterate over `(ValueId, &Inst)` pairs in table order.
    pub fn iter_insts(&self) -> impl Iterator<Item = (ValueId, &Inst)> {
        self.insts
            .iter()
            .enumerate()
            .map(|(i, inst)| (ValueId(i as u32), inst))
    }

    /// Render the function as LLVM-flavoured text (for debugging and docs).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "define {}({} args) {{", self.name, self.num_args);
        for (bid, block) in self.iter_blocks() {
            let _ = writeln!(s, "{bid}: ; {}", block.label);
            for &iid in &block.insts {
                let inst = self.inst(iid);
                let ops: Vec<String> =
                    inst.op.operands().iter().map(|o| o.to_string()).collect();
                if inst.op.has_result() {
                    let _ = writeln!(
                        s,
                        "  {iid} = {} {}  ; line {}",
                        inst.op.mnemonic(),
                        ops.join(", "),
                        inst.line
                    );
                } else {
                    let _ = writeln!(
                        s,
                        "  {} {}  ; line {}",
                        inst.op.mnemonic(),
                        ops.join(", "),
                        inst.line
                    );
                }
            }
        }
        s.push_str("}\n");
        s
    }

    /// Total number of static instructions that match a predicate.
    pub fn count_insts(&self, pred: impl Fn(&Op) -> bool) -> usize {
        self.insts.iter().filter(|i| pred(&i.op)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Operand;

    #[test]
    fn new_function_has_entry_block() {
        let f = Function::new("f", 2);
        assert_eq!(f.entry(), BlockId(0));
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.num_args, 2);
        assert_eq!(f.num_insts(), 0);
    }

    #[test]
    fn text_rendering_mentions_instructions() {
        let mut f = Function::new("f", 0);
        f.insts.push(Inst::new(
            Op::Bin {
                kind: crate::inst::BinKind::Add,
                lhs: Operand::ConstI(1),
                rhs: Operand::ConstI(2),
            },
            7,
        ));
        f.blocks[0].insts.push(ValueId(0));
        f.insts.push(Inst::new(Op::Ret { value: None }, 8));
        f.blocks[0].insts.push(ValueId(1));
        let text = f.to_text();
        assert!(text.contains("add"));
        assert!(text.contains("line 7"));
        assert!(text.contains("ret"));
        assert_eq!(f.count_insts(|op| matches!(op, Op::Bin { .. })), 1);
    }
}
