//! Instructions, operands and opcodes.
//!
//! Every instruction in a [`crate::Function`] is identified by its
//! [`ValueId`]: the index of the instruction in the function's instruction
//! table.  Instructions that produce a value (most of them) define the SSA
//! register with that same id, so "the result of instruction `%17`" and
//! "register `%17`" are the same thing — exactly how LLVM numbering behaves
//! and how LLVM-Tracer names trace entries in the original FlipTracker.

use serde::{Deserialize, Serialize};

use crate::block::BlockId;
use crate::global::GlobalId;
use crate::types::Ty;

/// Index of an instruction (and of the SSA register it defines) within a
/// function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ValueId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Identifier of a static loop within a function (assigned by the builder in
/// nesting order).  Dynamic region partitioning keys off these ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LoopId(pub u32);

impl std::fmt::Display for LoopId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "loop{}", self.0)
    }
}

/// Classification of a structured loop, used when the trace is partitioned
/// into code regions ("first-level inner loops" in the paper's model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoopKind {
    /// The application's main (outermost) computation loop.
    Main,
    /// Any nested loop; `depth` 1 is a first-level inner loop.
    Inner,
}

/// An operand of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// The SSA register defined by another instruction of the same function.
    Value(ValueId),
    /// A function argument (0-based).
    Arg(u32),
    /// An immediate 64-bit integer.
    ConstI(i64),
    /// An immediate 64-bit float.
    ConstF(f64),
    /// The base address of a module global.
    Global(GlobalId),
}

impl Operand {
    /// True if the operand refers to a runtime value (register or argument)
    /// rather than an immediate constant or a global base address.
    pub fn is_dynamic(&self) -> bool {
        matches!(self, Operand::Value(_) | Operand::Arg(_))
    }

    /// The referenced register, if any.
    pub fn as_value(&self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(*v),
            _ => None,
        }
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Value(v) => write!(f, "{v}"),
            Operand::Arg(a) => write!(f, "arg{a}"),
            Operand::ConstI(c) => write!(f, "{c}"),
            Operand::ConstF(c) => write!(f, "{c:?}"),
            Operand::Global(g) => write!(f, "@g{}", g.0),
        }
    }
}

/// Binary arithmetic / logical opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinKind {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (traps on division by zero).
    SDiv,
    /// Integer remainder (traps on division by zero).
    SRem,
    /// Floating addition.
    FAdd,
    /// Floating subtraction.
    FSub,
    /// Floating multiplication.
    FMul,
    /// Floating division.
    FDiv,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Logical shift right (the paper's "Shifting" pattern).
    LShr,
    /// Arithmetic shift right.
    AShr,
    /// Integer minimum (modelled as an instruction; used by sorting kernels).
    SMin,
    /// Integer maximum.
    SMax,
    /// Floating minimum.
    FMin,
    /// Floating maximum.
    FMax,
}

impl BinKind {
    /// Result type of the operation.
    pub fn result_ty(self) -> Ty {
        match self {
            BinKind::FAdd
            | BinKind::FSub
            | BinKind::FMul
            | BinKind::FDiv
            | BinKind::FMin
            | BinKind::FMax => Ty::F64,
            _ => Ty::I64,
        }
    }

    /// True for floating-point arithmetic.
    pub fn is_float(self) -> bool {
        self.result_ty() == Ty::F64
    }

    /// True for the shift family (`Shl`, `LShr`, `AShr`).
    pub fn is_shift(self) -> bool {
        matches!(self, BinKind::Shl | BinKind::LShr | BinKind::AShr)
    }

    /// True for additive operations (integer or floating add/sub), the raw
    /// material of the paper's *Repeated Additions* pattern.
    pub fn is_additive(self) -> bool {
        matches!(
            self,
            BinKind::Add | BinKind::Sub | BinKind::FAdd | BinKind::FSub
        )
    }

    /// Mnemonic used by the textual printer (LLVM-flavoured).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinKind::Add => "add",
            BinKind::Sub => "sub",
            BinKind::Mul => "mul",
            BinKind::SDiv => "sdiv",
            BinKind::SRem => "srem",
            BinKind::FAdd => "fadd",
            BinKind::FSub => "fsub",
            BinKind::FMul => "fmul",
            BinKind::FDiv => "fdiv",
            BinKind::And => "and",
            BinKind::Or => "or",
            BinKind::Xor => "xor",
            BinKind::Shl => "shl",
            BinKind::LShr => "lshr",
            BinKind::AShr => "ashr",
            BinKind::SMin => "smin",
            BinKind::SMax => "smax",
            BinKind::FMin => "fmin",
            BinKind::FMax => "fmax",
        }
    }
}

/// Comparison predicates (shared between integer and float compares).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpKind {
    /// Mnemonic used by the textual printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpKind::Eq => "eq",
            CmpKind::Ne => "ne",
            CmpKind::Lt => "lt",
            CmpKind::Le => "le",
            CmpKind::Gt => "gt",
            CmpKind::Ge => "ge",
        }
    }
}

/// Conversion opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CastKind {
    /// f64 -> i64 (truncation towards zero); the paper's *Truncation* pattern.
    FpToSi,
    /// i64 -> f64.
    SiToFp,
    /// Truncate an i64 to its low 32 bits (sign-extended back to i64).
    TruncI32,
    /// Round an f64 to f32 precision (stored widened back to f64).
    FpRound32,
    /// Reinterpret the raw bits of an f64 as an i64.
    BitcastFtoI,
    /// Reinterpret the raw bits of an i64 as an f64.
    BitcastItoF,
}

impl CastKind {
    /// Result type of the conversion.
    pub fn result_ty(self) -> Ty {
        match self {
            CastKind::FpToSi | CastKind::TruncI32 | CastKind::BitcastFtoI => Ty::I64,
            CastKind::SiToFp | CastKind::FpRound32 | CastKind::BitcastItoF => Ty::F64,
        }
    }

    /// True for conversions that discard information (the truncation family).
    pub fn is_truncating(self) -> bool {
        matches!(
            self,
            CastKind::FpToSi | CastKind::TruncI32 | CastKind::FpRound32
        )
    }

    /// Mnemonic used by the textual printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastKind::FpToSi => "fptosi",
            CastKind::SiToFp => "sitofp",
            CastKind::TruncI32 => "trunc.i32",
            CastKind::FpRound32 => "fpround.f32",
            CastKind::BitcastFtoI => "bitcast.f2i",
            CastKind::BitcastItoF => "bitcast.i2f",
        }
    }
}

/// Output formatting directive for [`Op::Output`]; models the `printf`
/// formats through which corrupted mantissa bits can be dropped
/// (the paper's Truncation pattern finds `%12.6e` in LULESH).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutputFormat {
    /// Full-precision value (all 64 bits significant).
    Full,
    /// Scientific notation with the given number of significant decimal
    /// digits after the point (e.g. `%12.6e` is `Scientific(6)`).
    Scientific(u8),
    /// Integer rendering of the value.
    Integer,
}

/// Intrinsic functions evaluated directly by the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Intrinsic {
    /// `sqrt(x)`.
    Sqrt,
    /// `fabs(x)`.
    Fabs,
    /// `pow(x, y)`.
    Pow,
    /// `exp(x)`.
    Exp,
    /// `log(x)`.
    Log,
    /// `cos(x)`.
    Cos,
    /// `sin(x)`.
    Sin,
}

impl Intrinsic {
    /// Number of arguments the intrinsic expects.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Pow => 2,
            _ => 1,
        }
    }

    /// Name used by the textual printer.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Fabs => "fabs",
            Intrinsic::Pow => "pow",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Cos => "cos",
            Intrinsic::Sin => "sin",
        }
    }
}

/// The operation performed by an instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Binary arithmetic or logical operation.
    Bin {
        /// Opcode.
        kind: BinKind,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Comparison producing 0 or 1 (i64).
    Cmp {
        /// Predicate.
        kind: CmpKind,
        /// True when the operands are compared as floats.
        float: bool,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Conversion.
    Cast {
        /// Conversion opcode.
        kind: CastKind,
        /// Source operand.
        src: Operand,
    },
    /// `result = cond ? then_v : else_v` without a branch.
    Select {
        /// Condition (non-zero = true).
        cond: Operand,
        /// Value when true.
        then_v: Operand,
        /// Value when false.
        else_v: Operand,
    },
    /// Load the 8-byte cell at `addr`.
    Load {
        /// Address operand (must hold a pointer).
        addr: Operand,
    },
    /// Store `value` to the 8-byte cell at `addr`.  Produces no result.
    Store {
        /// Address operand (must hold a pointer).
        addr: Operand,
        /// Value to store.
        value: Operand,
    },
    /// Allocate `size` 8-byte cells in the current frame; result is the base
    /// pointer.  The cells are released when the frame returns (this is what
    /// makes KMEANS-style "temporal corrupted locations freed at return"
    /// observable in the ACL analysis).
    Alloca {
        /// Number of 8-byte cells.
        size: u32,
        /// Debug name of the allocation.
        name: String,
    },
    /// Pointer arithmetic: `result = base + index` (in cells).
    Gep {
        /// Base pointer operand.
        base: Operand,
        /// Element index operand (i64).
        index: Operand,
    },
    /// Call another function of the module.
    Call {
        /// Callee name (resolved by the verifier/VM).
        callee: String,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// Call a VM-evaluated math intrinsic.
    CallIntrinsic {
        /// Which intrinsic.
        intrinsic: Intrinsic,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// Return from the current function.
    Ret {
        /// Optional return value.
        value: Option<Operand>,
    },
    /// Unconditional branch.
    Br {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch.
    CondBr {
        /// Condition (non-zero = true).
        cond: Operand,
        /// Target when true.
        then_b: BlockId,
        /// Target when false.
        else_b: BlockId,
    },
    /// Emit a value to the program's output stream (printf model).
    Output {
        /// Value to print.
        value: Operand,
        /// Formatting (controls how many bits survive into the output).
        format: OutputFormat,
    },
    /// Marker: execution enters an instance of the loop body region.
    LoopBegin {
        /// Static loop id.
        id: LoopId,
        /// Nesting depth (0 = main loop, 1 = first-level inner loop, ...).
        depth: u32,
        /// Loop classification.
        kind: LoopKind,
        /// Human-readable region name (e.g. `cg_b`).
        name: String,
    },
    /// Marker: execution leaves an instance of the loop body region.
    LoopEnd {
        /// Static loop id.
        id: LoopId,
    },
    /// Marker: a new iteration of the loop body starts (emitted at the top of
    /// every dynamic iteration; used for per-iteration region partitioning,
    /// e.g. Figure 6 of the paper).
    LoopIter {
        /// Static loop id.
        id: LoopId,
    },
    /// No operation (used by tests and as a padding instruction).
    Nop,
}

impl Op {
    /// Does the instruction define an SSA value?
    pub fn has_result(&self) -> bool {
        !matches!(
            self,
            Op::Store { .. }
                | Op::Ret { .. }
                | Op::Br { .. }
                | Op::CondBr { .. }
                | Op::Output { .. }
                | Op::LoopBegin { .. }
                | Op::LoopEnd { .. }
                | Op::LoopIter { .. }
                | Op::Nop
        )
    }

    /// Is this a block terminator?
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Ret { .. } | Op::Br { .. } | Op::CondBr { .. })
    }

    /// All operands read by this instruction, in a fixed order.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Op::Bin { lhs, rhs, .. } | Op::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Op::Cast { src, .. } => vec![*src],
            Op::Select {
                cond,
                then_v,
                else_v,
            } => vec![*cond, *then_v, *else_v],
            Op::Load { addr } => vec![*addr],
            Op::Store { addr, value } => vec![*addr, *value],
            Op::Alloca { .. } => vec![],
            Op::Gep { base, index } => vec![*base, *index],
            Op::Call { args, .. } | Op::CallIntrinsic { args, .. } => args.clone(),
            Op::Ret { value } => value.iter().copied().collect(),
            Op::Br { .. } => vec![],
            Op::CondBr { cond, .. } => vec![*cond],
            Op::Output { value, .. } => vec![*value],
            Op::LoopBegin { .. } | Op::LoopEnd { .. } | Op::LoopIter { .. } | Op::Nop => vec![],
        }
    }

    /// Short opcode name used by traces, DOT output and the printer.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Bin { kind, .. } => kind.mnemonic(),
            Op::Cmp { float: false, .. } => "icmp",
            Op::Cmp { float: true, .. } => "fcmp",
            Op::Cast { kind, .. } => kind.mnemonic(),
            Op::Select { .. } => "select",
            Op::Load { .. } => "load",
            Op::Store { .. } => "store",
            Op::Alloca { .. } => "alloca",
            Op::Gep { .. } => "gep",
            Op::Call { .. } => "call",
            Op::CallIntrinsic { .. } => "call.intrinsic",
            Op::Ret { .. } => "ret",
            Op::Br { .. } => "br",
            Op::CondBr { .. } => "condbr",
            Op::Output { .. } => "output",
            Op::LoopBegin { .. } => "loop.begin",
            Op::LoopEnd { .. } => "loop.end",
            Op::LoopIter { .. } => "loop.iter",
            Op::Nop => "nop",
        }
    }
}

/// A single IR instruction: an operation plus source metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// Source line number attributed to this instruction (used to report
    /// pattern locations back to the user, as in Table I of the paper).
    pub line: u32,
}

impl Inst {
    /// Create an instruction with an explicit source line.
    pub fn new(op: Op, line: u32) -> Self {
        Inst { op, line }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_dynamic_classification() {
        assert!(Operand::Value(ValueId(3)).is_dynamic());
        assert!(Operand::Arg(0).is_dynamic());
        assert!(!Operand::ConstI(7).is_dynamic());
        assert!(!Operand::ConstF(1.5).is_dynamic());
        assert!(!Operand::Global(GlobalId(0)).is_dynamic());
    }

    #[test]
    fn result_classification_matches_llvm_expectations() {
        assert!(Op::Load {
            addr: Operand::Arg(0)
        }
        .has_result());
        assert!(!Op::Store {
            addr: Operand::Arg(0),
            value: Operand::ConstI(1)
        }
        .has_result());
        assert!(!Op::Br {
            target: BlockId(0)
        }
        .has_result());
        assert!(Op::Br {
            target: BlockId(0)
        }
        .is_terminator());
        assert!(!Op::Nop.is_terminator());
    }

    #[test]
    fn operands_enumeration_is_complete_for_binary_ops() {
        let op = Op::Bin {
            kind: BinKind::FAdd,
            lhs: Operand::Value(ValueId(1)),
            rhs: Operand::ConstF(2.0),
        };
        assert_eq!(op.operands().len(), 2);
        assert_eq!(op.mnemonic(), "fadd");
    }

    #[test]
    fn shift_and_additive_classification() {
        assert!(BinKind::LShr.is_shift());
        assert!(BinKind::Shl.is_shift());
        assert!(!BinKind::Add.is_shift());
        assert!(BinKind::FAdd.is_additive());
        assert!(BinKind::Sub.is_additive());
        assert!(!BinKind::FMul.is_additive());
    }

    #[test]
    fn cast_truncation_classification() {
        assert!(CastKind::FpToSi.is_truncating());
        assert!(CastKind::TruncI32.is_truncating());
        assert!(CastKind::FpRound32.is_truncating());
        assert!(!CastKind::SiToFp.is_truncating());
        assert!(!CastKind::BitcastFtoI.is_truncating());
    }

    #[test]
    fn intrinsic_arity() {
        assert_eq!(Intrinsic::Pow.arity(), 2);
        assert_eq!(Intrinsic::Sqrt.arity(), 1);
    }

    #[test]
    fn value_id_display() {
        assert_eq!(format!("{}", ValueId(42)), "%42");
        assert_eq!(format!("{}", Operand::Arg(1)), "arg1");
        assert_eq!(format!("{}", LoopId(2)), "loop2");
    }
}
