//! Basic blocks.

use serde::{Deserialize, Serialize};

use crate::inst::ValueId;

/// Index of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A basic block: an ordered list of instruction ids, the last of which must
/// be a terminator once the function is finished.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Debug label.
    pub label: String,
    /// Instruction ids, in execution order.
    pub insts: Vec<ValueId>,
}

impl Block {
    /// Create an empty block with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Block {
            label: label.into(),
            insts: Vec::new(),
        }
    }

    /// Last instruction of the block, if any.
    pub fn last(&self) -> Option<ValueId> {
        self.insts.last().copied()
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the block has no instructions yet.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_basics() {
        let mut b = Block::new("entry");
        assert!(b.is_empty());
        b.insts.push(ValueId(0));
        b.insts.push(ValueId(1));
        assert_eq!(b.len(), 2);
        assert_eq!(b.last(), Some(ValueId(1)));
        assert_eq!(format!("{}", BlockId(3)), "bb3");
    }
}
