//! Value types of the IR.
//!
//! The IR is deliberately small: 64-bit integers, 64-bit floats and pointers
//! cover every construct the FlipTracker analyses care about.  Narrower
//! widths (the paper's truncation pattern replaces 64-bit floating point
//! multiplications with 32-bit integer multiplications) are modelled with
//! explicit cast instructions rather than separate storage types, which keeps
//! the bit-flip fault model uniform: every live value is a 64-bit word.

use serde::{Deserialize, Serialize};

/// The static type of an SSA value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE-754 floating point.
    F64,
    /// Pointer into the VM's flat memory (an 8-byte cell index).
    Ptr,
}

impl Ty {
    /// Human-readable name used by the textual printer.
    pub fn name(self) -> &'static str {
        match self {
            Ty::I64 => "i64",
            Ty::F64 => "f64",
            Ty::Ptr => "ptr",
        }
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Ty::I64.name(), "i64");
        assert_eq!(Ty::F64.name(), "f64");
        assert_eq!(Ty::Ptr.name(), "ptr");
        assert_eq!(format!("{}", Ty::F64), "f64");
    }

    #[test]
    fn types_are_copy_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Ty::I64);
        s.insert(Ty::I64);
        s.insert(Ty::Ptr);
        assert_eq!(s.len(), 2);
    }
}
