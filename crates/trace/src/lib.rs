//! `ftkr-trace` — the code-region model and dynamic-trace partitioning.
//!
//! Section III-A of the FlipTracker paper models an HPC application as a
//! chain of *code regions* delineated by loop structures: a code region is a
//! first-level inner loop (or a block between two neighbouring loops), and
//! each runtime invocation of a region is a *region instance*.  This crate
//! turns the flat dynamic trace recorded by `ftkr-vm` into that model:
//!
//! * [`partition::partition_regions`] — split a trace into region instances
//!   at a chosen loop level (the paper uses first-level inner loops);
//! * [`partition::partition_iterations`] — treat every iteration of a single
//!   loop (typically the main loop) as one instance, as the paper does for
//!   its per-iteration experiments (Figure 6);
//! * [`region::RegionInstance`] — one dynamic instance, with its event range,
//!   the main-loop iteration it belongs to, and instruction counts;
//! * [`split`] — utilities to slice a trace by instance, mirroring the
//!   "trace splitting" step of Section IV-A.

pub mod partition;
pub mod region;
pub mod split;

pub use partition::{partition_iterations, partition_regions, RegionSelector};
pub use region::{RegionInstance, RegionKey};
pub use split::{instance_slice, region_instruction_counts};
