//! Region instances: one dynamic execution of a code region.

use serde::{Deserialize, Serialize};

use ftkr_ir::{FunctionId, LoopId};

/// Static identity of a code region: which loop of which function.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionKey {
    /// Function containing the loop.
    pub func: FunctionId,
    /// Loop id within that function.
    pub loop_id: LoopId,
    /// Region name (from the builder's loop metadata, e.g. `cg_b`).
    pub name: String,
}

/// One dynamic instance of a code region: a contiguous range of trace events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionInstance {
    /// Which static region this is an instance of.
    pub key: RegionKey,
    /// Index of the first event of the instance (the `LoopBegin` marker for
    /// loop regions, the `LoopIter` marker for iteration regions).
    pub start: usize,
    /// One past the last event of the instance.
    pub end: usize,
    /// 0-based instance number of this region (how many instances of the
    /// same region started before this one).
    pub instance: usize,
    /// 0-based iteration of the application's main loop this instance runs
    /// in; `None` when the instance starts outside any main loop (e.g.
    /// initialization code).
    pub main_iteration: Option<usize>,
    /// Source line range of the region (from loop metadata).
    pub lines: (u32, u32),
}

impl RegionInstance {
    /// Number of dynamic events covered (including marker events).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the instance covers no events (cannot normally happen).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// True if the given event index falls inside this instance.
    pub fn contains(&self, event_index: usize) -> bool {
        event_index >= self.start && event_index < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> RegionKey {
        RegionKey {
            func: FunctionId(0),
            loop_id: LoopId(1),
            name: "cg_b".to_string(),
        }
    }

    #[test]
    fn instance_geometry() {
        let inst = RegionInstance {
            key: key(),
            start: 10,
            end: 25,
            instance: 2,
            main_iteration: Some(0),
            lines: (440, 453),
        };
        assert_eq!(inst.len(), 15);
        assert!(!inst.is_empty());
        assert!(inst.contains(10));
        assert!(inst.contains(24));
        assert!(!inst.contains(25));
        assert!(!inst.contains(9));
    }
}
