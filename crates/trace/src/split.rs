//! Trace splitting: slicing a trace by region instance and computing
//! per-region instruction counts (Table I's "#instr in an iteration").

use std::collections::BTreeMap;

use ftkr_vm::{Trace, TraceSlice};

use crate::region::RegionInstance;

/// The events covered by one region instance (a borrowed [`TraceSlice`] —
/// splitting never copies the trace, mirroring the paper's observation that
/// splitting is what keeps per-region analysis tractable; the slice carries
/// its trace so operand spans and location ids stay resolvable).
pub fn instance_slice<'t>(trace: &'t Trace, instance: &RegionInstance) -> TraceSlice<'t> {
    trace.slice(instance.start, instance.end)
}

/// Dynamic instruction count (markers excluded) of every region, summed over
/// the instances that belong to the given main-loop iteration.  This is the
/// figure Table I reports per code region.
pub fn region_instruction_counts(
    trace: &Trace,
    instances: &[RegionInstance],
    main_iteration: usize,
) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for inst in instances {
        if inst.main_iteration != Some(main_iteration) {
            continue;
        }
        let n = instance_slice(trace, inst)
            .events()
            .iter()
            .filter(|e| !e.kind.is_marker())
            .count();
        *counts.entry(inst.key.name.clone()).or_insert(0) += n;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition_regions, RegionSelector};
    use ftkr_ir::prelude::*;
    use ftkr_ir::Global;
    use ftkr_vm::{Vm, VmConfig};

    fn module() -> Module {
        let mut m = Module::new("m");
        let g = m.add_global(Global::zeroed_f64("x", 4));
        let mut b = FunctionBuilder::new("main");
        let zero = b.const_i64(0);
        let two = b.const_i64(2);
        let gaddr = b.global_addr(g);
        b.main_for("main_loop", zero, two, |b, _| {
            let z = b.const_i64(0);
            let four = b.const_i64(4);
            b.region_for("fill", z, four, |b, i| {
                let f = b.sitofp(i);
                b.store_idx(gaddr, i, f);
            });
        });
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn slices_and_counts_are_consistent() {
        let module = module();
        let trace = Vm::new(VmConfig::tracing())
            .run(&module)
            .unwrap()
            .trace
            .unwrap();
        let regions = partition_regions(&trace, &module, &RegionSelector::FirstLevelInner);
        assert_eq!(regions.len(), 2); // one `fill` instance per main iteration

        let slice = instance_slice(&trace, &regions[0]);
        assert_eq!(slice.len(), regions[0].len());

        let counts0 = region_instruction_counts(&trace, &regions, 0);
        let counts1 = region_instruction_counts(&trace, &regions, 1);
        assert_eq!(counts0.len(), 1);
        assert!(counts0["fill"] > 0);
        // The loop body does the same work in both main iterations.
        assert_eq!(counts0["fill"], counts1["fill"]);
        // Marker events are excluded from counts.
        assert!(counts0["fill"] < regions[0].len());
    }

    #[test]
    fn counts_for_missing_iteration_are_empty() {
        let module = module();
        let trace = Vm::new(VmConfig::tracing())
            .run(&module)
            .unwrap()
            .trace
            .unwrap();
        let regions = partition_regions(&trace, &module, &RegionSelector::FirstLevelInner);
        assert!(region_instruction_counts(&trace, &regions, 99).is_empty());
    }
}
