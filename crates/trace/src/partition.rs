//! Partitioning a dynamic trace into code-region instances.

use std::collections::HashMap;

use ftkr_ir::{FunctionId, LoopId, LoopKind, Module};
use ftkr_vm::{EventKind, MarkerKind, Trace};

use crate::region::{RegionInstance, RegionKey};

/// One loop marker in partition-friendly form, abstracting over where it was
/// recorded: inline in the event stream (ordinary traces) or in the
/// out-of-band marker table (`TraceOpts::skip_markers` traces, which fall
/// back to this plus the module's static loop tables).
struct Marker {
    func: FunctionId,
    frame: u32,
    id: LoopId,
    kind: MarkerKind,
    /// Event index of the marker itself (for inline markers), or of the
    /// first event after it (for elided markers) — where an instance that
    /// *includes* the marker starts.
    here: usize,
    /// First event index after the marker — where an instance that *ends*
    /// at this marker stops (exclusive).
    after: usize,
}

/// The trace's loop markers in execution order, from whichever channel holds
/// them.
fn marker_stream(trace: &Trace) -> Vec<Marker> {
    if trace.markers_elided() {
        return trace
            .markers()
            .iter()
            .map(|m| Marker {
                func: m.func,
                frame: m.frame,
                id: match m.kind {
                    MarkerKind::Begin { id, .. }
                    | MarkerKind::End { id }
                    | MarkerKind::Iter { id } => id,
                },
                kind: m.kind,
                here: m.at_event as usize,
                after: m.at_event as usize,
            })
            .collect();
    }
    trace
        .iter()
        .filter_map(|(idx, event)| {
            let kind = match event.kind {
                EventKind::LoopBegin { id, depth, kind } => MarkerKind::Begin { id, depth, kind },
                EventKind::LoopEnd { id } => MarkerKind::End { id },
                EventKind::LoopIter { id } => MarkerKind::Iter { id },
                _ => return None,
            };
            Some(Marker {
                func: event.func,
                frame: event.frame,
                id: match kind {
                    MarkerKind::Begin { id, .. }
                    | MarkerKind::End { id }
                    | MarkerKind::Iter { id } => id,
                },
                kind,
                here: idx,
                after: idx + 1,
            })
        })
        .collect()
}

/// Which loops open code regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionSelector {
    /// Every inner loop that is not already inside an open region — with the
    /// benchmark kernels' structure (a main loop containing a chain of inner
    /// loops) this is exactly the paper's "first-level inner loop" choice.
    FirstLevelInner,
    /// Only loops whose builder-assigned region name is in the list.
    Named(Vec<String>),
    /// Every loop, including nested ones (produces nested instances; useful
    /// for fine-grained exploration of a single region).
    AllLoops,
}

impl RegionSelector {
    /// Convenience constructor for [`RegionSelector::Named`].
    pub fn named<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        RegionSelector::Named(names.into_iter().map(Into::into).collect())
    }

    fn selects(&self, name: &str, kind: LoopKind, inside_open_region: bool) -> bool {
        match self {
            RegionSelector::FirstLevelInner => kind == LoopKind::Inner && !inside_open_region,
            RegionSelector::Named(names) => {
                !inside_open_region && names.iter().any(|n| n == name)
            }
            RegionSelector::AllLoops => true,
        }
    }
}

fn loop_meta(module: &Module, func: FunctionId, id: LoopId) -> (String, (u32, u32)) {
    match module.function(func).loop_info(id) {
        Some(info) => (info.name.clone(), (info.line_start, info.line_end)),
        None => (format!("{id}"), (0, 0)),
    }
}

/// Split a trace into code-region instances according to `selector`.
///
/// Region instances never overlap (except with [`RegionSelector::AllLoops`],
/// where nested loops produce nested instances) and are returned in start
/// order.  Each instance records the main-loop iteration in which it started,
/// which is how the paper selects "the first instance of each code region in
/// iteration 0 of the main loop" for its per-code-region experiments.
pub fn partition_regions(
    trace: &Trace,
    module: &Module,
    selector: &RegionSelector,
) -> Vec<RegionInstance> {
    let mut instances = Vec::new();
    // Stack of currently open *selected* regions: (key, start, main_iter, lines, func, id, frame)
    struct Open {
        key: RegionKey,
        start: usize,
        main_iteration: Option<usize>,
        lines: (u32, u32),
        frame: u32,
    }
    let mut open: Vec<Open> = Vec::new();
    let mut instance_counters: HashMap<RegionKey, usize> = HashMap::new();
    let mut main_iteration: Option<usize> = None;
    let mut main_loop: Option<(FunctionId, LoopId)> = None;

    for marker in marker_stream(trace) {
        match marker.kind {
            MarkerKind::Begin { kind, .. } => {
                if kind == LoopKind::Main && main_loop.is_none() {
                    main_loop = Some((marker.func, marker.id));
                }
                let (name, lines) = loop_meta(module, marker.func, marker.id);
                if selector.selects(&name, kind, !open.is_empty()) {
                    let key = RegionKey {
                        func: marker.func,
                        loop_id: marker.id,
                        name,
                    };
                    open.push(Open {
                        key,
                        start: marker.here,
                        main_iteration,
                        lines,
                        frame: marker.frame,
                    });
                }
            }
            MarkerKind::Iter { .. } if main_loop == Some((marker.func, marker.id)) => {
                main_iteration = Some(main_iteration.map(|i| i + 1).unwrap_or(0));
            }
            MarkerKind::End { .. } => {
                // Close the innermost open region that matches this loop.
                if let Some(pos) = open.iter().rposition(|o| {
                    o.key.loop_id == marker.id
                        && o.key.func == marker.func
                        && o.frame == marker.frame
                }) {
                    let o = open.remove(pos);
                    let counter = instance_counters.entry(o.key.clone()).or_insert(0);
                    let instance = *counter;
                    *counter += 1;
                    instances.push(RegionInstance {
                        key: o.key,
                        start: o.start,
                        end: marker.after,
                        instance,
                        main_iteration: o.main_iteration,
                        lines: o.lines,
                    });
                }
            }
            _ => {}
        }
    }

    // Any region left open (program trapped mid-region) is closed at the end
    // of the trace so downstream analyses still see it.
    for o in open {
        let counter = instance_counters.entry(o.key.clone()).or_insert(0);
        let instance = *counter;
        *counter += 1;
        instances.push(RegionInstance {
            key: o.key,
            start: o.start,
            end: trace.len(),
            instance,
            main_iteration: o.main_iteration,
            lines: o.lines,
        });
    }

    instances.sort_by_key(|i| i.start);
    instances
}

/// Treat every iteration of one loop as a region instance (the paper's
/// per-iteration experiments treat the whole main loop body as a single code
/// region and each iteration as one instance).
///
/// `loop_name` of `None` selects the program's main loop (the first loop with
/// [`LoopKind::Main`]).
pub fn partition_iterations(
    trace: &Trace,
    module: &Module,
    loop_name: Option<&str>,
) -> Vec<RegionInstance> {
    // Identify the target loop: (func, id).
    let markers = marker_stream(trace);
    let mut target: Option<(FunctionId, LoopId)> = None;
    for m in &markers {
        if let MarkerKind::Begin { kind, .. } = m.kind {
            let (name, _) = loop_meta(module, m.func, m.id);
            let matches = match loop_name {
                Some(wanted) => name == wanted,
                None => kind == LoopKind::Main,
            };
            if matches {
                target = Some((m.func, m.id));
                break;
            }
        }
    }
    let Some((tfunc, tid)) = target else {
        return Vec::new();
    };
    let (name, lines) = loop_meta(module, tfunc, tid);

    let mut instances = Vec::new();
    let mut current_start: Option<usize> = None;
    let mut count = 0usize;
    let key = RegionKey {
        func: tfunc,
        loop_id: tid,
        name,
    };

    let close = |start: usize, end: usize, count: &mut usize, out: &mut Vec<RegionInstance>| {
        out.push(RegionInstance {
            key: key.clone(),
            start,
            end,
            instance: *count,
            main_iteration: Some(*count),
            lines,
        });
        *count += 1;
    };

    for m in &markers {
        if m.func != tfunc {
            continue;
        }
        match m.kind {
            MarkerKind::Iter { .. } if m.id == tid => {
                if let Some(start) = current_start.take() {
                    close(start, m.here, &mut count, &mut instances);
                }
                current_start = Some(m.here);
            }
            MarkerKind::End { .. } if m.id == tid => {
                if let Some(start) = current_start.take() {
                    close(start, m.here, &mut count, &mut instances);
                }
            }
            _ => {}
        }
    }
    if let Some(start) = current_start.take() {
        close(start, trace.len(), &mut count, &mut instances);
    }
    instances
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftkr_ir::prelude::*;
    use ftkr_ir::Global;
    use ftkr_vm::{Vm, VmConfig};

    /// main loop (3 iterations) containing two inner region loops, the second
    /// of which has a nested loop.
    fn nested_module() -> Module {
        let mut m = Module::new("nested");
        let g = m.add_global(Global::zeroed_f64("acc", 1));
        let mut b = FunctionBuilder::new("main");
        b.set_line(100);
        let zero = b.const_i64(0);
        let three = b.const_i64(3);
        let gaddr = b.global_addr(g);
        b.main_for("main_loop", zero, three, |b, _it| {
            b.set_line(110);
            let z = b.const_i64(0);
            let two = b.const_i64(2);
            b.region_for("region_a", z, two, |b, i| {
                let f = b.sitofp(i);
                let cur = b.load(gaddr);
                let next = b.fadd(cur, f);
                b.store(gaddr, next);
            });
            b.set_line(120);
            let z2 = b.const_i64(0);
            let two2 = b.const_i64(2);
            b.region_for("region_b", z2, two2, |b, _i| {
                let z3 = b.const_i64(0);
                let four = b.const_i64(4);
                b.for_loop("inner_nested", LoopKind::Inner, z3, four, 1, |b, j| {
                    let f = b.sitofp(j);
                    let cur = b.load(gaddr);
                    let next = b.fadd(cur, f);
                    b.store(gaddr, next);
                });
            });
        });
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    fn traced(module: &Module) -> Trace {
        Vm::new(VmConfig::tracing())
            .run(module)
            .unwrap()
            .trace
            .unwrap()
    }

    #[test]
    fn first_level_inner_partitioning_finds_both_regions_per_iteration() {
        let module = nested_module();
        let trace = traced(&module);
        let regions = partition_regions(&trace, &module, &RegionSelector::FirstLevelInner);
        // 3 main iterations x 2 first-level regions.
        assert_eq!(regions.len(), 6);
        let a_count = regions.iter().filter(|r| r.key.name == "region_a").count();
        let b_count = regions.iter().filter(|r| r.key.name == "region_b").count();
        assert_eq!(a_count, 3);
        assert_eq!(b_count, 3);
        // The nested loop is *not* its own region at this level.
        assert!(regions.iter().all(|r| r.key.name != "inner_nested"));
        // Instances are numbered per region and non-overlapping.
        let a0 = regions
            .iter()
            .find(|r| r.key.name == "region_a" && r.instance == 0)
            .unwrap();
        assert_eq!(a0.main_iteration, Some(0));
        assert_eq!(a0.lines.0, 110);
        for w in regions.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn named_selector_picks_only_requested_regions() {
        let module = nested_module();
        let trace = traced(&module);
        let regions =
            partition_regions(&trace, &module, &RegionSelector::named(["region_b"]));
        assert_eq!(regions.len(), 3);
        assert!(regions.iter().all(|r| r.key.name == "region_b"));
    }

    #[test]
    fn all_loops_selector_includes_nested_and_main() {
        let module = nested_module();
        let trace = traced(&module);
        let regions = partition_regions(&trace, &module, &RegionSelector::AllLoops);
        let names: std::collections::HashSet<_> =
            regions.iter().map(|r| r.key.name.clone()).collect();
        assert!(names.contains("main_loop"));
        assert!(names.contains("inner_nested"));
        // nested instances overlap their parents: main_loop instance covers all.
        let main_inst = regions.iter().find(|r| r.key.name == "main_loop").unwrap();
        let nested = regions.iter().find(|r| r.key.name == "inner_nested").unwrap();
        assert!(main_inst.start <= nested.start && nested.end <= main_inst.end);
    }

    #[test]
    fn per_iteration_partitioning_of_the_main_loop() {
        let module = nested_module();
        let trace = traced(&module);
        let iters = partition_iterations(&trace, &module, None);
        assert_eq!(iters.len(), 3);
        for (i, inst) in iters.iter().enumerate() {
            assert_eq!(inst.instance, i);
            assert_eq!(inst.main_iteration, Some(i));
            assert!(!inst.is_empty());
        }
        // Iterations of the same loop are contiguous and ordered.
        for w in iters.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn per_iteration_partitioning_by_name() {
        let module = nested_module();
        let trace = traced(&module);
        // region_a runs 3 times with 2 iterations each => 6 iteration instances.
        let iters = partition_iterations(&trace, &module, Some("region_a"));
        assert_eq!(iters.len(), 6);
    }

    #[test]
    fn missing_loop_name_returns_empty() {
        let module = nested_module();
        let trace = traced(&module);
        assert!(partition_iterations(&trace, &module, Some("nope")).is_empty());
    }

    /// `skip_markers` traces have no marker events, yet partitioning falls
    /// back to the out-of-band marker table + static loop info and finds the
    /// same regions covering the same computation.
    #[test]
    fn marker_elided_traces_partition_identically_modulo_markers() {
        let module = nested_module();
        let full = traced(&module);
        let lean = Vm::new(VmConfig::tracing().without_markers())
            .run(&module)
            .unwrap()
            .trace
            .unwrap();
        assert!(lean.markers_elided());

        for selector in [RegionSelector::FirstLevelInner, RegionSelector::AllLoops] {
            let a = partition_regions(&full, &module, &selector);
            let b = partition_regions(&lean, &module, &selector);
            assert_eq!(a.len(), b.len(), "{selector:?}");
            for (fa, fb) in a.iter().zip(&b) {
                assert_eq!(fa.key, fb.key);
                assert_eq!(fa.instance, fb.instance);
                assert_eq!(fa.main_iteration, fb.main_iteration);
                assert_eq!(fa.lines, fb.lines);
                // Same computation inside: the non-marker events of the full
                // instance equal the events of the lean instance.
                let fa_events: Vec<_> = (fa.start..fa.end)
                    .filter(|&i| !full.events[i].kind.is_marker())
                    .map(|i| full.resolved(i))
                    .collect();
                let fb_events: Vec<_> =
                    (fb.start..fb.end).map(|i| lean.resolved(i)).collect();
                assert_eq!(fa_events, fb_events, "region {:?}", fa.key.name);
            }
        }

        let ia = partition_iterations(&full, &module, None);
        let ib = partition_iterations(&lean, &module, None);
        assert_eq!(ia.len(), ib.len());
        for (fa, fb) in ia.iter().zip(&ib) {
            let fa_events: Vec<_> = (fa.start..fa.end)
                .filter(|&i| !full.events[i].kind.is_marker())
                .map(|i| full.resolved(i))
                .collect();
            let fb_events: Vec<_> = (fb.start..fb.end).map(|i| lean.resolved(i)).collect();
            assert_eq!(fa_events, fb_events, "iteration {}", fa.instance);
        }
    }
}
