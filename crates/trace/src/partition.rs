//! Partitioning a dynamic trace into code-region instances.

use std::collections::HashMap;

use ftkr_ir::{FunctionId, LoopId, LoopKind, Module};
use ftkr_vm::{EventKind, Trace};

use crate::region::{RegionInstance, RegionKey};

/// Which loops open code regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionSelector {
    /// Every inner loop that is not already inside an open region — with the
    /// benchmark kernels' structure (a main loop containing a chain of inner
    /// loops) this is exactly the paper's "first-level inner loop" choice.
    FirstLevelInner,
    /// Only loops whose builder-assigned region name is in the list.
    Named(Vec<String>),
    /// Every loop, including nested ones (produces nested instances; useful
    /// for fine-grained exploration of a single region).
    AllLoops,
}

impl RegionSelector {
    /// Convenience constructor for [`RegionSelector::Named`].
    pub fn named<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        RegionSelector::Named(names.into_iter().map(Into::into).collect())
    }

    fn selects(&self, name: &str, kind: LoopKind, inside_open_region: bool) -> bool {
        match self {
            RegionSelector::FirstLevelInner => kind == LoopKind::Inner && !inside_open_region,
            RegionSelector::Named(names) => {
                !inside_open_region && names.iter().any(|n| n == name)
            }
            RegionSelector::AllLoops => true,
        }
    }
}

fn loop_meta(module: &Module, func: FunctionId, id: LoopId) -> (String, (u32, u32)) {
    match module.function(func).loop_info(id) {
        Some(info) => (info.name.clone(), (info.line_start, info.line_end)),
        None => (format!("{id}"), (0, 0)),
    }
}

/// Split a trace into code-region instances according to `selector`.
///
/// Region instances never overlap (except with [`RegionSelector::AllLoops`],
/// where nested loops produce nested instances) and are returned in start
/// order.  Each instance records the main-loop iteration in which it started,
/// which is how the paper selects "the first instance of each code region in
/// iteration 0 of the main loop" for its per-code-region experiments.
pub fn partition_regions(
    trace: &Trace,
    module: &Module,
    selector: &RegionSelector,
) -> Vec<RegionInstance> {
    let mut instances = Vec::new();
    // Stack of currently open *selected* regions: (key, start, main_iter, lines, func, id, frame)
    struct Open {
        key: RegionKey,
        start: usize,
        main_iteration: Option<usize>,
        lines: (u32, u32),
        frame: u32,
    }
    let mut open: Vec<Open> = Vec::new();
    let mut instance_counters: HashMap<RegionKey, usize> = HashMap::new();
    let mut main_iteration: Option<usize> = None;
    let mut main_loop: Option<(FunctionId, LoopId)> = None;

    for (idx, event) in trace.iter() {
        match event.kind {
            EventKind::LoopBegin { id, kind, .. } => {
                if kind == LoopKind::Main && main_loop.is_none() {
                    main_loop = Some((event.func, id));
                }
                let (name, lines) = loop_meta(module, event.func, id);
                if selector.selects(&name, kind, !open.is_empty()) {
                    let key = RegionKey {
                        func: event.func,
                        loop_id: id,
                        name,
                    };
                    open.push(Open {
                        key,
                        start: idx,
                        main_iteration,
                        lines,
                        frame: event.frame,
                    });
                }
            }
            EventKind::LoopIter { id }
                if main_loop == Some((event.func, id)) => {
                    main_iteration = Some(main_iteration.map(|i| i + 1).unwrap_or(0));
                }
            EventKind::LoopEnd { id } => {
                // Close the innermost open region that matches this loop.
                if let Some(pos) = open
                    .iter()
                    .rposition(|o| o.key.loop_id == id && o.key.func == event.func && o.frame == event.frame)
                {
                    let o = open.remove(pos);
                    let counter = instance_counters.entry(o.key.clone()).or_insert(0);
                    let instance = *counter;
                    *counter += 1;
                    instances.push(RegionInstance {
                        key: o.key,
                        start: o.start,
                        end: idx + 1,
                        instance,
                        main_iteration: o.main_iteration,
                        lines: o.lines,
                    });
                }
            }
            _ => {}
        }
    }

    // Any region left open (program trapped mid-region) is closed at the end
    // of the trace so downstream analyses still see it.
    for o in open {
        let counter = instance_counters.entry(o.key.clone()).or_insert(0);
        let instance = *counter;
        *counter += 1;
        instances.push(RegionInstance {
            key: o.key,
            start: o.start,
            end: trace.len(),
            instance,
            main_iteration: o.main_iteration,
            lines: o.lines,
        });
    }

    instances.sort_by_key(|i| i.start);
    instances
}

/// Treat every iteration of one loop as a region instance (the paper's
/// per-iteration experiments treat the whole main loop body as a single code
/// region and each iteration as one instance).
///
/// `loop_name` of `None` selects the program's main loop (the first loop with
/// [`LoopKind::Main`]).
pub fn partition_iterations(
    trace: &Trace,
    module: &Module,
    loop_name: Option<&str>,
) -> Vec<RegionInstance> {
    // Identify the target loop: (func, id).
    let mut target: Option<(FunctionId, LoopId)> = None;
    for (_, event) in trace.iter() {
        if let EventKind::LoopBegin { id, kind, .. } = event.kind {
            let (name, _) = loop_meta(module, event.func, id);
            let matches = match loop_name {
                Some(wanted) => name == wanted,
                None => kind == LoopKind::Main,
            };
            if matches {
                target = Some((event.func, id));
                break;
            }
        }
    }
    let Some((tfunc, tid)) = target else {
        return Vec::new();
    };
    let (name, lines) = loop_meta(module, tfunc, tid);

    let mut instances = Vec::new();
    let mut current_start: Option<usize> = None;
    let mut count = 0usize;
    let key = RegionKey {
        func: tfunc,
        loop_id: tid,
        name,
    };

    let close = |start: usize, end: usize, count: &mut usize, out: &mut Vec<RegionInstance>| {
        out.push(RegionInstance {
            key: key.clone(),
            start,
            end,
            instance: *count,
            main_iteration: Some(*count),
            lines,
        });
        *count += 1;
    };

    for (idx, event) in trace.iter() {
        if event.func != tfunc {
            continue;
        }
        match event.kind {
            EventKind::LoopIter { id } if id == tid => {
                if let Some(start) = current_start.take() {
                    close(start, idx, &mut count, &mut instances);
                }
                current_start = Some(idx);
            }
            EventKind::LoopEnd { id } if id == tid => {
                if let Some(start) = current_start.take() {
                    close(start, idx, &mut count, &mut instances);
                }
            }
            _ => {}
        }
    }
    if let Some(start) = current_start.take() {
        close(start, trace.len(), &mut count, &mut instances);
    }
    instances
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftkr_ir::prelude::*;
    use ftkr_ir::Global;
    use ftkr_vm::{Vm, VmConfig};

    /// main loop (3 iterations) containing two inner region loops, the second
    /// of which has a nested loop.
    fn nested_module() -> Module {
        let mut m = Module::new("nested");
        let g = m.add_global(Global::zeroed_f64("acc", 1));
        let mut b = FunctionBuilder::new("main");
        b.set_line(100);
        let zero = b.const_i64(0);
        let three = b.const_i64(3);
        let gaddr = b.global_addr(g);
        b.main_for("main_loop", zero, three, |b, _it| {
            b.set_line(110);
            let z = b.const_i64(0);
            let two = b.const_i64(2);
            b.region_for("region_a", z, two, |b, i| {
                let f = b.sitofp(i);
                let cur = b.load(gaddr);
                let next = b.fadd(cur, f);
                b.store(gaddr, next);
            });
            b.set_line(120);
            let z2 = b.const_i64(0);
            let two2 = b.const_i64(2);
            b.region_for("region_b", z2, two2, |b, _i| {
                let z3 = b.const_i64(0);
                let four = b.const_i64(4);
                b.for_loop("inner_nested", LoopKind::Inner, z3, four, 1, |b, j| {
                    let f = b.sitofp(j);
                    let cur = b.load(gaddr);
                    let next = b.fadd(cur, f);
                    b.store(gaddr, next);
                });
            });
        });
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    fn traced(module: &Module) -> Trace {
        Vm::new(VmConfig::tracing())
            .run(module)
            .unwrap()
            .trace
            .unwrap()
    }

    #[test]
    fn first_level_inner_partitioning_finds_both_regions_per_iteration() {
        let module = nested_module();
        let trace = traced(&module);
        let regions = partition_regions(&trace, &module, &RegionSelector::FirstLevelInner);
        // 3 main iterations x 2 first-level regions.
        assert_eq!(regions.len(), 6);
        let a_count = regions.iter().filter(|r| r.key.name == "region_a").count();
        let b_count = regions.iter().filter(|r| r.key.name == "region_b").count();
        assert_eq!(a_count, 3);
        assert_eq!(b_count, 3);
        // The nested loop is *not* its own region at this level.
        assert!(regions.iter().all(|r| r.key.name != "inner_nested"));
        // Instances are numbered per region and non-overlapping.
        let a0 = regions
            .iter()
            .find(|r| r.key.name == "region_a" && r.instance == 0)
            .unwrap();
        assert_eq!(a0.main_iteration, Some(0));
        assert_eq!(a0.lines.0, 110);
        for w in regions.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn named_selector_picks_only_requested_regions() {
        let module = nested_module();
        let trace = traced(&module);
        let regions =
            partition_regions(&trace, &module, &RegionSelector::named(["region_b"]));
        assert_eq!(regions.len(), 3);
        assert!(regions.iter().all(|r| r.key.name == "region_b"));
    }

    #[test]
    fn all_loops_selector_includes_nested_and_main() {
        let module = nested_module();
        let trace = traced(&module);
        let regions = partition_regions(&trace, &module, &RegionSelector::AllLoops);
        let names: std::collections::HashSet<_> =
            regions.iter().map(|r| r.key.name.clone()).collect();
        assert!(names.contains("main_loop"));
        assert!(names.contains("inner_nested"));
        // nested instances overlap their parents: main_loop instance covers all.
        let main_inst = regions.iter().find(|r| r.key.name == "main_loop").unwrap();
        let nested = regions.iter().find(|r| r.key.name == "inner_nested").unwrap();
        assert!(main_inst.start <= nested.start && nested.end <= main_inst.end);
    }

    #[test]
    fn per_iteration_partitioning_of_the_main_loop() {
        let module = nested_module();
        let trace = traced(&module);
        let iters = partition_iterations(&trace, &module, None);
        assert_eq!(iters.len(), 3);
        for (i, inst) in iters.iter().enumerate() {
            assert_eq!(inst.instance, i);
            assert_eq!(inst.main_iteration, Some(i));
            assert!(!inst.is_empty());
        }
        // Iterations of the same loop are contiguous and ordered.
        for w in iters.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn per_iteration_partitioning_by_name() {
        let module = nested_module();
        let trace = traced(&module);
        // region_a runs 3 times with 2 iterations each => 6 iteration instances.
        let iters = partition_iterations(&trace, &module, Some("region_a"));
        assert_eq!(iters.len(), 6);
    }

    #[test]
    fn missing_loop_name_returns_empty() {
        let module = nested_module();
        let trace = traced(&module);
        assert!(partition_iterations(&trace, &module, Some("nope")).is_empty());
    }
}
