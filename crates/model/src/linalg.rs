//! A small dense row-major matrix type with exactly the operations the
//! regression model needs: products, transpose, and a linear solve via
//! Gaussian elimination with partial pivoting.

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A rows×cols matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from nested rows.
    ///
    /// # Panics
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map(|row| row.len()).unwrap_or(0);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flat_map(|row| row.iter().copied()).collect(),
        }
    }

    /// The identity matrix of size n.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// A column vector.
    pub fn column(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.set(i, j, out.get(i, j) + a * other.get(k, j));
                }
            }
        }
        out
    }

    /// Add `lambda` to every diagonal element (ridge regularization).
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.set(i, i, self.get(i, i) + lambda);
        }
    }

    /// Solve `self · x = b` with Gaussian elimination and partial pivoting;
    /// returns `None` if the matrix is numerically singular.
    pub fn solve(&self, b: &Matrix) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.rows, self.rows, "right-hand side size mismatch");
        let n = self.rows;
        let m = b.cols;
        // Augmented working copy.
        let mut a = self.clone();
        let mut x = b.clone();
        for col in 0..n {
            // Pivot.
            let mut pivot = col;
            for r in (col + 1)..n {
                if a.get(r, col).abs() > a.get(pivot, col).abs() {
                    pivot = r;
                }
            }
            if a.get(pivot, col).abs() < 1e-14 {
                return None;
            }
            if pivot != col {
                for c in 0..n {
                    let tmp = a.get(col, c);
                    a.set(col, c, a.get(pivot, c));
                    a.set(pivot, c, tmp);
                }
                for c in 0..m {
                    let tmp = x.get(col, c);
                    x.set(col, c, x.get(pivot, c));
                    x.set(pivot, c, tmp);
                }
            }
            // Eliminate below.
            let p = a.get(col, col);
            for r in (col + 1)..n {
                let factor = a.get(r, col) / p;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a.set(r, c, a.get(r, c) - factor * a.get(col, c));
                }
                for c in 0..m {
                    x.set(r, c, x.get(r, c) - factor * x.get(col, c));
                }
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let p = a.get(col, col);
            for c in 0..m {
                let mut v = x.get(col, c);
                for k in (col + 1)..n {
                    v -= a.get(col, k) * x.get(k, c);
                }
                x.set(col, c, v / p);
            }
        }
        Some(x)
    }

    /// Flatten a single-column matrix into a vector.
    pub fn to_vec(&self) -> Vec<f64> {
        self.data.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(1, 1), 50.0);
        let t = a.transpose();
        assert_eq!(t.get(0, 1), 3.0);
        assert_eq!(Matrix::identity(3).matmul(&Matrix::identity(3)), Matrix::identity(3));
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let x_true = Matrix::column(&[1.0, -2.0, 3.0]);
        let b = a.matmul(&x_true);
        let x = a.solve(&b).unwrap();
        for i in 0..3 {
            assert!((x.get(i, 0) - x_true.get(i, 0)).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let b = Matrix::column(&[1.0, 2.0]);
        assert!(a.solve(&b).is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let b = Matrix::column(&[2.0, 3.0]);
        let x = a.solve(&b).unwrap();
        assert!((x.get(0, 0) - 3.0).abs() < 1e-12);
        assert!((x.get(1, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn add_diagonal_is_ridge_shift() {
        let mut a = Matrix::identity(2);
        a.add_diagonal(0.5);
        assert_eq!(a.get(0, 0), 1.5);
        assert_eq!(a.get(1, 1), 1.5);
        assert_eq!(a.get(0, 1), 0.0);
    }
}
