//! Bayesian multivariate linear regression (Eq. 3 of the paper).
//!
//! With a zero-mean Gaussian prior over the coefficients (precision `λ`) and
//! Gaussian noise, the posterior mean of the coefficient vector is the ridge
//! estimate `β = (XᵀX + λI)⁻¹ Xᵀ y`, which is what we fit here; `λ → 0`
//! recovers ordinary least squares.  The model includes an intercept
//! (the paper's ε term).

use crate::linalg::Matrix;

/// A fitted model.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionFit {
    /// Coefficients, one per feature (the βᵢ of Eq. 3).
    pub coefficients: Vec<f64>,
    /// Intercept (the ε of Eq. 3).
    pub intercept: f64,
    /// Coefficient of determination of the fit on its training data.
    pub r_squared: f64,
}

impl RegressionFit {
    /// Predict the response for one feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.coefficients.len());
        self.intercept
            + features
                .iter()
                .zip(&self.coefficients)
                .map(|(x, b)| x * b)
                .sum::<f64>()
    }

    /// Predict and clamp into `[0, 1]` (success rates are probabilities; the
    /// paper's Table IV also reports clamped predictions such as 1.000).
    pub fn predict_rate(&self, features: &[f64]) -> f64 {
        self.predict(features).clamp(0.0, 1.0)
    }
}

/// Bayesian linear regression with a Gaussian (ridge) prior.
#[derive(Debug, Clone, Copy)]
pub struct BayesianLinearRegression {
    /// Prior precision (ridge strength).
    pub prior_precision: f64,
}

impl Default for BayesianLinearRegression {
    fn default() -> Self {
        BayesianLinearRegression {
            prior_precision: 1e-6,
        }
    }
}

impl BayesianLinearRegression {
    /// Create a model with the given prior precision.
    pub fn new(prior_precision: f64) -> Self {
        BayesianLinearRegression { prior_precision }
    }

    /// Fit the model to rows of features and their responses.
    ///
    /// # Panics
    /// Panics if `x` and `y` have different lengths or `x` is empty.
    pub fn fit(&self, x: &[Vec<f64>], y: &[f64]) -> RegressionFit {
        assert_eq!(x.len(), y.len(), "feature/response length mismatch");
        assert!(!x.is_empty(), "cannot fit on an empty data set");
        let n_features = x[0].len();
        // Design matrix with a leading column of ones for the intercept.
        let design: Vec<Vec<f64>> = x
            .iter()
            .map(|row| {
                let mut r = Vec::with_capacity(n_features + 1);
                r.push(1.0);
                r.extend_from_slice(row);
                r
            })
            .collect();
        let xm = Matrix::from_rows(&design);
        let ym = Matrix::column(y);
        let xt = xm.transpose();
        let mut xtx = xt.matmul(&xm);
        xtx.add_diagonal(self.prior_precision);
        let xty = xt.matmul(&ym);
        let beta = xtx
            .solve(&xty)
            .unwrap_or_else(|| {
                // A singular system (collinear features with λ = 0) falls
                // back to a slightly stronger prior rather than failing.
                let mut xtx2 = xt.matmul(&xm);
                xtx2.add_diagonal(self.prior_precision.max(1e-8) * 1e3);
                xtx2.solve(&xty).expect("regularized system is nonsingular")
            })
            .to_vec();
        let intercept = beta[0];
        let coefficients = beta[1..].to_vec();

        // R² on the training data.
        let fit = RegressionFit {
            coefficients,
            intercept,
            r_squared: 0.0,
        };
        let mean_y: f64 = y.iter().sum::<f64>() / y.len() as f64;
        let ss_tot: f64 = y.iter().map(|v| (v - mean_y).powi(2)).sum();
        let ss_res: f64 = x
            .iter()
            .zip(y)
            .map(|(row, &obs)| (obs - fit.predict(row)).powi(2))
            .sum();
        let r_squared = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };
        RegressionFit {
            r_squared,
            ..fit
        }
    }

    /// Leave-one-out evaluation: for every sample, fit on the others and
    /// predict it.  Returns `(predicted, relative error)` per sample — the
    /// prediction-error column of Table IV.
    pub fn leave_one_out(&self, x: &[Vec<f64>], y: &[f64]) -> Vec<(f64, f64)> {
        assert_eq!(x.len(), y.len());
        (0..x.len())
            .map(|held_out| {
                let train_x: Vec<Vec<f64>> = x
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != held_out)
                    .map(|(_, row)| row.clone())
                    .collect();
                let train_y: Vec<f64> = y
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != held_out)
                    .map(|(_, v)| *v)
                    .collect();
                let fit = self.fit(&train_x, &train_y);
                let predicted = fit.predict_rate(&x[held_out]);
                let actual = y[held_out];
                let err = if actual.abs() > 1e-12 {
                    (predicted - actual).abs() / actual.abs()
                } else {
                    predicted.abs()
                };
                (predicted, err)
            })
            .collect()
    }
}

/// Standardized regression coefficients (`β·σ_x/σ_y`), the importance metric
/// the paper uses to rank the patterns.
pub fn standardized_coefficients(fit: &RegressionFit, x: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
    let n = x.len() as f64;
    let std = |values: &[f64]| -> f64 {
        let mean = values.iter().sum::<f64>() / n;
        (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt()
    };
    let sy = std(y).max(1e-12);
    (0..fit.coefficients.len())
        .map(|j| {
            let col: Vec<f64> = x.iter().map(|row| row[j]).collect();
            fit.coefficients[j] * std(&col) / sy
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn synthetic(n: usize, noise: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let true_beta = vec![0.5, -0.3, 0.8];
        let intercept = 0.2;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let row: Vec<f64> = (0..3).map(|_| rng.random_range(0.0..1.0)).collect();
            let mut resp = intercept;
            for (v, b) in row.iter().zip(&true_beta) {
                resp += v * b;
            }
            resp += noise * (rng.random_range(-1.0..1.0));
            x.push(row);
            y.push(resp);
        }
        (x, y, true_beta, intercept)
    }

    #[test]
    fn recovers_known_coefficients_without_noise() {
        let (x, y, beta, intercept) = synthetic(40, 0.0, 1);
        let fit = BayesianLinearRegression::default().fit(&x, &y);
        for (est, truth) in fit.coefficients.iter().zip(&beta) {
            assert!((est - truth).abs() < 1e-4, "{est} vs {truth}");
        }
        assert!((fit.intercept - intercept).abs() < 1e-4);
        assert!(fit.r_squared > 0.999_99);
    }

    #[test]
    fn r_squared_degrades_gracefully_with_noise() {
        let (x, y, _, _) = synthetic(60, 0.2, 2);
        let fit = BayesianLinearRegression::default().fit(&x, &y);
        assert!(fit.r_squared > 0.4 && fit.r_squared <= 1.0, "{}", fit.r_squared);
    }

    #[test]
    fn leave_one_out_has_small_error_on_clean_data() {
        let (x, y, _, _) = synthetic(30, 0.01, 3);
        let results = BayesianLinearRegression::default().leave_one_out(&x, &y);
        assert_eq!(results.len(), 30);
        let mean_err: f64 = results.iter().map(|(_, e)| e).sum::<f64>() / 30.0;
        assert!(mean_err < 0.2, "mean LOO error {mean_err}");
    }

    #[test]
    fn predictions_are_clamped_to_probability_range() {
        let fit = RegressionFit {
            coefficients: vec![10.0],
            intercept: 0.0,
            r_squared: 1.0,
        };
        assert_eq!(fit.predict_rate(&[1.0]), 1.0);
        assert_eq!(fit.predict_rate(&[-1.0]), 0.0);
        assert!((fit.predict(&[0.05]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn standardized_coefficients_rank_influential_features_first() {
        // y depends strongly on feature 0, weakly on feature 1.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            let a = (i as f64) / 50.0;
            let b = ((i * 7) % 13) as f64 / 13.0;
            x.push(vec![a, b]);
            y.push(2.0 * a + 0.01 * b);
        }
        let fit = BayesianLinearRegression::default().fit(&x, &y);
        let std = standardized_coefficients(&fit, &x, &y);
        assert!(std[0].abs() > std[1].abs());
    }

    #[test]
    fn collinear_features_fall_back_to_a_stronger_prior() {
        // Two identical columns make XᵀX singular for λ = 0.
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, i as f64])
            .collect();
        let y: Vec<f64> = (0..20).map(|i| 3.0 * i as f64).collect();
        let fit = BayesianLinearRegression::new(0.0).fit(&x, &y);
        // The two coefficients share the weight; predictions still work.
        let pred = fit.predict(&[10.0, 10.0]);
        assert!((pred - 30.0).abs() < 1e-3, "pred {pred}");
    }
}
