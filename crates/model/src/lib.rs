//! `ftkr-model` — Bayesian multivariate linear regression for resilience
//! prediction (Use Case 2 of the FlipTracker paper).
//!
//! The paper models an application's success rate as a linear function of its
//! six pattern rates (Eq. 3), fits the model with Bayesian linear regression,
//! reports the R² of the full fit, predicts held-out applications
//! (leave-one-out), and ranks pattern importance with standardized
//! regression coefficients.  This crate provides exactly those pieces on top
//! of a small dense linear-algebra module (no external math dependencies).

pub mod linalg;
pub mod regression;

pub use linalg::Matrix;
pub use regression::{standardized_coefficients, BayesianLinearRegression, RegressionFit};
