//! DDDG construction from a trace slice.

use std::collections::HashSet;

use ftkr_vm::{Location, LocationId, TraceSlice, Value};

/// Index of a node within a [`Dddg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A vertex: one dynamic version of a location's value.
#[derive(Debug, Clone, PartialEq)]
pub struct DddgNode {
    /// The register or memory location.
    pub location: Location,
    /// Version number (0 is the value the location had when the region
    /// started; each write bumps the version).
    pub version: u32,
    /// The value observed (for version 0) or produced (for later versions).
    pub value: Value,
    /// Index (within the slice) of the event that defined this version;
    /// `None` for version-0 nodes, whose value predates the region.
    pub def_event: Option<usize>,
    /// Source line of the defining event (or of the first reading event for
    /// version-0 nodes).
    pub line: u32,
}

/// An edge: a dataflow dependence `from → to` created by one dynamic
/// instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DddgEdge {
    /// Node whose value was read.
    pub from: NodeId,
    /// Node whose value was produced.
    pub to: NodeId,
    /// Index (within the slice) of the instruction that created the edge.
    pub event: usize,
}

/// Sentinel for "no node yet" in the dense per-location tables.
const NO_NODE: u32 = u32::MAX;

/// A dynamic data dependence graph for one code-region instance.
///
/// Construction works in the owning trace's dense [`LocationId`] space: the
/// latest-version table is a flat vector indexed by id instead of a hash map
/// keyed by `Location`, so building a region DDDG costs one pass over the
/// slice plus one id-indexed array.
#[derive(Debug, Clone, Default)]
pub struct Dddg {
    nodes: Vec<DddgNode>,
    edges: Vec<DddgEdge>,
    /// Version-0 nodes (locations first observed by a read — the inputs).
    roots: Vec<NodeId>,
    /// Final version of every location written inside the region, as
    /// `(interned id, node)` pairs in first-write order.
    written_final: Vec<(LocationId, NodeId)>,
}

/// Incremental DDDG construction: one [`DddgBuilder::push`] per event of the
/// region, in order.  [`Dddg::from_slice`] drives it over a trace slice; the
/// windowed [`crate::visitor::DddgExtractor`] drives it from a shared
/// [`ftkr_vm::EventCursor`] walk or a live streamed run.
#[derive(Debug, Default)]
pub struct DddgBuilder {
    g: Dddg,
    /// Dense per-location tables over the producing run's id space (grown on
    /// demand: a streamed run's location table grows as it executes).
    latest: Vec<u32>,
    written_at: Vec<u32>,
    read_nodes: Vec<NodeId>,
}

impl DddgBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        DddgBuilder::default()
    }

    fn ensure(&mut self, id: LocationId) {
        if id.index() >= self.latest.len() {
            self.latest.resize(id.index() + 1, NO_NODE);
            self.written_at.resize(id.index() + 1, NO_NODE);
        }
    }

    /// Append one event: `idx` is the event's index *within the region*,
    /// `reads`/`write` its dataflow in interned-id form, `locations` the
    /// (at least partially) interned location table resolving those ids.
    pub fn push(
        &mut self,
        idx: usize,
        reads: &[(LocationId, Value)],
        write: Option<(LocationId, Value)>,
        line: u32,
        locations: &[Location],
    ) {
        self.read_nodes.clear();
        for &(id, value) in reads {
            self.ensure(id);
            let slot = self.latest[id.index()];
            let node = if slot != NO_NODE {
                NodeId(slot)
            } else {
                // First observation of this location inside the region:
                // it carries a pre-existing value => input.
                let n = self.g.push_node(DddgNode {
                    location: locations[id.index()],
                    version: 0,
                    value,
                    def_event: None,
                    line,
                });
                self.latest[id.index()] = n.0;
                self.g.roots.push(n);
                n
            };
            self.read_nodes.push(node);
        }
        if let Some((id, value)) = write {
            self.ensure(id);
            let slot = self.latest[id.index()];
            let version = if slot != NO_NODE {
                self.g.nodes[slot as usize].version + 1
            } else {
                0
            };
            let to = self.g.push_node(DddgNode {
                location: locations[id.index()],
                version,
                value,
                def_event: Some(idx),
                line,
            });
            self.latest[id.index()] = to.0;
            if self.written_at[id.index()] == NO_NODE {
                self.written_at[id.index()] = self.g.written_final.len() as u32;
                self.g.written_final.push((id, to));
            } else {
                self.g.written_final[self.written_at[id.index()] as usize].1 = to;
            }
            for &from in &self.read_nodes {
                self.g.edges.push(DddgEdge { from, to, event: idx });
            }
        }
    }

    /// The finished graph.
    pub fn finish(self) -> Dddg {
        self.g
    }
}

impl Dddg {
    /// Build the graph from the events of one region instance.
    pub fn from_slice(slice: TraceSlice<'_>) -> Self {
        let trace = slice.trace();
        let mut b = DddgBuilder::new();
        // Pre-size the dense tables: the id space is known here.
        b.latest = vec![NO_NODE; trace.num_locations()];
        b.written_at = vec![NO_NODE; trace.num_locations()];
        for (idx, view) in slice.iter() {
            let event = view.event();
            b.push(idx, view.read_ids(), event.write, event.line, trace.locations());
        }
        b.finish()
    }

    fn push_node(&mut self, node: DddgNode) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// All nodes.
    pub fn nodes(&self) -> &[DddgNode] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[DddgEdge] {
        &self.edges
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &DddgNode {
        &self.nodes[id.index()]
    }

    /// Input locations (root nodes): locations whose value was observed
    /// before any write inside the region, together with that value.
    pub fn inputs(&self) -> Vec<(Location, Value)> {
        let mut v: Vec<_> = self
            .roots
            .iter()
            .map(|&n| {
                let node = &self.nodes[n.index()];
                (node.location, node.value)
            })
            .collect();
        v.sort_by_key(|(l, _)| *l);
        v
    }

    /// Final value of every location written inside the region.
    pub fn final_writes(&self) -> Vec<(Location, Value)> {
        let mut v: Vec<_> = self
            .written_final
            .iter()
            .map(|&(_, n)| {
                let node = &self.nodes[n.index()];
                (node.location, node.value)
            })
            .collect();
        v.sort_by_key(|(l, _)| *l);
        v
    }

    /// Output locations as *leaves*: final versions of written locations
    /// whose node has no outgoing edge (nothing inside the region consumed
    /// them afterwards).  This is the classification available without
    /// looking past the region.
    pub fn leaf_outputs(&self) -> Vec<(Location, Value)> {
        let mut has_out = vec![false; self.nodes.len()];
        for e in &self.edges {
            has_out[e.from.index()] = true;
        }
        let mut v: Vec<_> = self
            .written_final
            .iter()
            .filter(|&&(_, n)| !has_out[n.index()])
            .map(|&(_, n)| {
                let node = &self.nodes[n.index()];
                (node.location, node.value)
            })
            .collect();
        v.sort_by_key(|(l, _)| *l);
        v
    }

    /// Output locations refined with the rest of the trace: written locations
    /// whose value is referenced again *after* the region instance ends.
    /// `later` must be the slice of events following the instance (of the
    /// same trace, so location ids agree).
    pub fn outputs_live_after(&self, later: TraceSlice<'_>) -> Vec<(Location, Value)> {
        let trace = later.trace();
        let mut used_later = vec![false; trace.num_locations()];
        for event in later.events() {
            for &(id, _) in trace.reads_of(event) {
                used_later[id.index()] = true;
            }
        }
        let mut v: Vec<_> = self
            .written_final
            .iter()
            .filter(|&&(id, _)| used_later.get(id.index()).copied().unwrap_or(false))
            .map(|&(_, n)| {
                let node = &self.nodes[n.index()];
                (node.location, node.value)
            })
            .collect();
        v.sort_by_key(|(l, _)| *l);
        v
    }

    /// Internal locations: touched by the region but neither inputs nor
    /// written-and-live-after outputs.
    pub fn internals(&self, outputs: &[(Location, Value)]) -> Vec<Location> {
        let inputs: HashSet<Location> = self
            .roots
            .iter()
            .map(|&n| self.nodes[n.index()].location)
            .collect();
        let outs: HashSet<Location> = outputs.iter().map(|(l, _)| *l).collect();
        let mut all: HashSet<Location> = self.nodes.iter().map(|n| n.location).collect();
        all.retain(|l| !inputs.contains(l) && !outs.contains(l));
        let mut v: Vec<_> = all.into_iter().collect();
        v.sort();
        v
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True when every edge goes from an earlier-created node to a
    /// later-created one — dynamic dataflow is acyclic by construction, and
    /// property tests lean on this invariant.
    pub fn is_acyclic(&self) -> bool {
        self.edges.iter().all(|e| e.from < e.to)
    }

    /// Render the graph in Graphviz DOT format.
    pub fn to_dot(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{title}\" {{");
        let _ = writeln!(s, "  rankdir=TB;");
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = if n.def_event.is_none() {
                "ellipse"
            } else {
                "box"
            };
            let _ = writeln!(
                s,
                "  n{} [shape={shape}, label=\"{} v{}\\n{}\"];",
                i, n.location, n.version, n.value
            );
        }
        for e in &self.edges {
            let _ = writeln!(s, "  n{} -> n{} [label=\"e{}\"];", e.from.0, e.to.0, e.event);
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftkr_ir::{BinKind, FunctionId, ValueId};
    use ftkr_vm::{EventKind, ResolvedEvent, Trace};

    fn reg(v: u32) -> Location {
        Location::reg(FunctionId(0), 0, ValueId(v))
    }

    fn ev(
        reads: Vec<(Location, Value)>,
        write: Option<(Location, Value)>,
        line: u32,
    ) -> ResolvedEvent {
        ResolvedEvent {
            func: FunctionId(0),
            frame: 0,
            inst: ValueId(0),
            line,
            kind: EventKind::Bin(BinKind::FAdd),
            reads,
            write,
        }
    }

    /// c = a + b; d = c * c; store d to m[7]
    fn sample_trace() -> Trace {
        Trace::from_resolved(vec![
            ev(
                vec![(reg(0), Value::F(1.0)), (reg(1), Value::F(2.0))],
                Some((reg(2), Value::F(3.0))),
                10,
            ),
            ev(
                vec![(reg(2), Value::F(3.0)), (reg(2), Value::F(3.0))],
                Some((reg(3), Value::F(9.0))),
                11,
            ),
            ev(
                vec![(reg(3), Value::F(9.0))],
                Some((Location::mem(7), Value::F(9.0))),
                12,
            ),
        ])
    }

    #[test]
    fn inputs_are_roots_and_outputs_are_leaves() {
        let t = sample_trace();
        let g = Dddg::from_slice(t.full());
        let inputs = g.inputs();
        assert_eq!(inputs.len(), 2);
        assert!(inputs.iter().any(|(l, v)| *l == reg(0) && *v == Value::F(1.0)));
        assert!(inputs.iter().any(|(l, v)| *l == reg(1) && *v == Value::F(2.0)));

        let leaves = g.leaf_outputs();
        assert_eq!(leaves, vec![(Location::mem(7), Value::F(9.0))]);

        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 2 + 2 + 1);
        assert!(g.is_acyclic());
    }

    #[test]
    fn outputs_live_after_uses_the_remaining_trace() {
        // The sample region followed by a read of m[7]: it is an output;
        // nothing reads reg(3) afterwards.
        let mut events: Vec<ResolvedEvent> = vec![
            ev(
                vec![(reg(0), Value::F(1.0)), (reg(1), Value::F(2.0))],
                Some((reg(2), Value::F(3.0))),
                10,
            ),
            ev(
                vec![(reg(2), Value::F(3.0)), (reg(2), Value::F(3.0))],
                Some((reg(3), Value::F(9.0))),
                11,
            ),
            ev(
                vec![(reg(3), Value::F(9.0))],
                Some((Location::mem(7), Value::F(9.0))),
                12,
            ),
        ];
        events.push(ev(vec![(Location::mem(7), Value::F(9.0))], None, 20));
        let t = Trace::from_resolved(events);
        let g = Dddg::from_slice(t.slice(0, 3));
        let outs = g.outputs_live_after(t.slice(3, 4));
        assert_eq!(outs, vec![(Location::mem(7), Value::F(9.0))]);
        // Nothing read later => no outputs.
        assert!(g.outputs_live_after(t.slice(4, 4)).is_empty());
    }

    #[test]
    fn internals_exclude_inputs_and_outputs() {
        let t = sample_trace();
        let g = Dddg::from_slice(t.full());
        let outs = g.leaf_outputs();
        let internals = g.internals(&outs);
        assert!(internals.contains(&reg(2)));
        assert!(internals.contains(&reg(3)));
        assert!(!internals.contains(&reg(0)));
        assert!(!internals.contains(&Location::mem(7)));
    }

    #[test]
    fn rewriting_a_location_bumps_versions() {
        let t = Trace::from_resolved(vec![
            ev(vec![], Some((Location::mem(0), Value::F(1.0))), 1),
            ev(vec![], Some((Location::mem(0), Value::F(2.0))), 2),
            ev(
                vec![(Location::mem(0), Value::F(2.0))],
                Some((reg(5), Value::F(2.0))),
                3,
            ),
        ]);
        let g = Dddg::from_slice(t.full());
        let versions: Vec<u32> = g
            .nodes()
            .iter()
            .filter(|n| n.location == Location::mem(0))
            .map(|n| n.version)
            .collect();
        assert_eq!(versions, vec![0, 1]);
        // m[0] was never read before being written => not an input.
        assert!(g.inputs().is_empty());
        // final value of m[0] is 2.0
        assert!(g
            .final_writes()
            .contains(&(Location::mem(0), Value::F(2.0))));
    }

    #[test]
    fn dot_output_mentions_nodes_and_edges() {
        let t = sample_trace();
        let g = Dddg::from_slice(t.full());
        let dot = g.to_dot("region");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 ->") || dot.contains("-> n2"));
        assert!(dot.contains("ellipse")); // roots
        assert!(dot.contains("box")); // defined nodes
    }

    #[test]
    fn empty_slice_produces_empty_graph() {
        let t = Trace::new();
        let g = Dddg::from_slice(t.full());
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.inputs().is_empty());
        assert!(g.leaf_outputs().is_empty());
        assert!(g.is_acyclic());
    }
}
