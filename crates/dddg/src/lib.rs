//! `ftkr-dddg` — dynamic data dependence graphs (DDDGs).
//!
//! Section III-B of the FlipTracker paper builds, for every code-region
//! instance, a *dynamic* data dependence graph from the instruction trace:
//! vertices are the values of variables obtained from registers or memory,
//! edges are the operations that transform input values into output values.
//! Root nodes are the region's **inputs**, leaf nodes its **outputs**, and
//! everything else is **internal** — the classification that drives where
//! faults are injected and how faulty and fault-free runs are compared
//! (Case 1 / Case 2 of Section III-D).
//!
//! * [`Dddg::from_slice`] builds the graph from a region-instance slice;
//! * [`Dddg::inputs`] / [`Dddg::leaf_outputs`] / [`Dddg::outputs_live_after`]
//!   classify locations;
//! * [`compare::compare_io`] compares the input/output values of matched
//!   faulty and fault-free instances and classifies the tolerance case;
//! * [`Dddg::to_dot`] renders the graph in Graphviz DOT format (the paper
//!   uses Graphviz for the same purpose).

pub mod compare;
pub mod graph;
pub mod visitor;

pub use compare::{compare_io, IoComparison, ToleranceCase};
pub use graph::{Dddg, DddgBuilder, DddgEdge, DddgNode, NodeId};
pub use visitor::DddgExtractor;
