//! DDDG construction as a windowed [`TraceVisitor`]: the graph of a region
//! instance is extracted from the event stream on the fly, so several region
//! DDDGs can be built in **one** walk over a trace (or streamed from a live
//! run) instead of one [`Dddg::from_slice`] pass per region.

use ftkr_vm::{EventCtx, Location, LocationId, TraceVisitor, Value, WalkEnd};

use crate::graph::{Dddg, DddgBuilder};

/// Builds the [`Dddg`] of the events whose walk index falls in
/// `[start, end)` — the event range of one region instance.
///
/// Drive it with an [`ftkr_vm::EventCursor`] over a materialized trace (any
/// number of extractors share the walk), or stream it from
/// [`ftkr_vm::Vm::run_with_visitors`].  Node `def_event` indices are relative
/// to `start`, exactly as [`Dddg::from_slice`] numbers them.
pub struct DddgExtractor {
    start: usize,
    end: usize,
    builder: DddgBuilder,
}

impl DddgExtractor {
    /// An extractor for the walk-index window `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        DddgExtractor {
            start,
            end: end.max(start),
            builder: DddgBuilder::new(),
        }
    }

    /// The finished graph.
    pub fn into_dddg(self) -> Dddg {
        self.builder.finish()
    }

    /// Feed one event (walk index `idx`, which must arrive in order).
    pub fn push(
        &mut self,
        idx: usize,
        reads: &[(LocationId, Value)],
        write: Option<(LocationId, Value)>,
        line: u32,
        locations: &[Location],
    ) {
        if idx < self.start || idx >= self.end {
            return;
        }
        self.builder.push(idx - self.start, reads, write, line, locations);
    }
}

impl TraceVisitor for DddgExtractor {
    fn on_event(&mut self, ctx: &EventCtx<'_>) {
        self.push(
            ctx.index,
            ctx.reads,
            ctx.event.write,
            ctx.event.line,
            ctx.locations,
        );
    }

    fn on_finish(&mut self, _end: &WalkEnd<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftkr_ir::prelude::*;
    use ftkr_ir::Global;
    use ftkr_vm::{EventCursor, Vm, VmConfig};

    fn module() -> Module {
        let mut m = Module::new("m");
        let g = m.add_global(Global::zeroed_f64("x", 8));
        let mut b = FunctionBuilder::new("main");
        let gaddr = b.global_addr(g);
        let zero = b.const_i64(0);
        let eight = b.const_i64(8);
        b.main_for("fill", zero, eight, |b, i| {
            let f = b.sitofp(i);
            let sq = b.fmul(f, f);
            b.store_idx(gaddr, i, sq);
        });
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn extractor_windows_match_from_slice() {
        let module = module();
        let trace = Vm::new(VmConfig::tracing())
            .run(&module)
            .unwrap()
            .trace
            .unwrap();
        // Three windows extracted in ONE walk, compared against three
        // independent from_slice passes.
        let windows = [(0usize, trace.len()), (3, 20), (10, 10)];
        let mut extractors: Vec<DddgExtractor> = windows
            .iter()
            .map(|&(s, e)| DddgExtractor::new(s, e))
            .collect();
        {
            let mut refs: Vec<&mut dyn ftkr_vm::TraceVisitor> = extractors
                .iter_mut()
                .map(|x| x as &mut dyn ftkr_vm::TraceVisitor)
                .collect();
            EventCursor::new(&trace).run(&mut refs);
        }
        for (x, &(s, e)) in extractors.into_iter().zip(&windows) {
            let got = x.into_dddg();
            let want = Dddg::from_slice(trace.slice(s, e));
            assert_eq!(got.num_nodes(), want.num_nodes(), "window {s}..{e}");
            assert_eq!(got.num_edges(), want.num_edges());
            assert_eq!(got.inputs(), want.inputs());
            assert_eq!(got.final_writes(), want.final_writes());
            assert_eq!(got.leaf_outputs(), want.leaf_outputs());
            assert_eq!(got.nodes(), want.nodes());
            assert_eq!(got.edges(), want.edges());
        }
    }
}
