//! Comparing the DDDGs of matched faulty and fault-free region instances.
//!
//! Section III-D of the paper identifies fault tolerance by comparing the
//! values of input and output locations between a faulty run and a matching
//! fault-free run:
//!
//! * **Case 1** — at least one corrupted input location, but every output
//!   location is correct: the region masked the error.
//! * **Case 2** — corrupted inputs and outputs exist, but the error magnitude
//!   (Eq. 2) shrinks across the region: the region attenuated the error.

use std::collections::HashMap;

use ftkr_vm::{Location, Value};

use crate::graph::Dddg;

/// Outcome of the comparison of one region instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToleranceCase {
    /// The inputs were already clean; the region never saw the error.
    NotAffected,
    /// Case 1: corrupted inputs, clean outputs — the region masked the error.
    Masked,
    /// Case 2: the error survived but its magnitude decreased.
    Attenuated,
    /// The error survived and did not decrease.
    Propagated,
}

impl ToleranceCase {
    /// True for the two cases the paper counts as natural fault tolerance.
    pub fn is_tolerant(&self) -> bool {
        matches!(self, ToleranceCase::Masked | ToleranceCase::Attenuated)
    }
}

/// Detailed result of an input/output comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct IoComparison {
    /// Input locations whose values differ, with (clean, faulty) values.
    pub corrupted_inputs: Vec<(Location, Value, Value)>,
    /// Output locations whose values differ, with (clean, faulty) values.
    pub corrupted_outputs: Vec<(Location, Value, Value)>,
    /// Largest relative error among corrupted inputs.
    pub max_input_error: f64,
    /// Largest relative error among corrupted outputs.
    pub max_output_error: f64,
    /// Classification.
    pub case: ToleranceCase,
}

fn diff(
    clean: &[(Location, Value)],
    faulty: &[(Location, Value)],
) -> (Vec<(Location, Value, Value)>, f64) {
    let clean_map: HashMap<Location, Value> = clean.iter().copied().collect();
    let faulty_map: HashMap<Location, Value> = faulty.iter().copied().collect();
    let mut corrupted = Vec::new();
    let mut max_err: f64 = 0.0;
    for (loc, cv) in &clean_map {
        if let Some(fv) = faulty_map.get(loc) {
            if !fv.bit_eq(*cv) {
                corrupted.push((*loc, *cv, *fv));
                max_err = max_err.max(fv.error_magnitude(*cv));
            }
        }
    }
    // Locations present only in the faulty run (control-flow divergence made
    // the region touch different data) also count as corrupted.
    for (loc, fv) in &faulty_map {
        if !clean_map.contains_key(loc) {
            corrupted.push((*loc, *fv, *fv));
            max_err = f64::INFINITY;
        }
    }
    corrupted.sort_by_key(|(l, _, _)| *l);
    (corrupted, max_err)
}

/// Compare the inputs and outputs of a matched pair of region-instance DDDGs.
///
/// `clean_later` / `faulty_later` are the trace slices following each
/// instance (of the same traces the DDDGs were built from) and are used to
/// decide which written locations are true outputs (live after the region).
/// Pass empty slices to fall back to leaf outputs.
pub fn compare_io(
    clean: &Dddg,
    faulty: &Dddg,
    clean_later: ftkr_vm::TraceSlice<'_>,
    faulty_later: ftkr_vm::TraceSlice<'_>,
) -> IoComparison {
    let clean_inputs = clean.inputs();
    let faulty_inputs = faulty.inputs();
    let clean_outputs = if clean_later.is_empty() {
        clean.leaf_outputs()
    } else {
        clean.outputs_live_after(clean_later)
    };
    let faulty_outputs = if faulty_later.is_empty() {
        faulty.leaf_outputs()
    } else {
        faulty.outputs_live_after(faulty_later)
    };

    let (corrupted_inputs, max_input_error) = diff(&clean_inputs, &faulty_inputs);
    let (corrupted_outputs, max_output_error) = diff(&clean_outputs, &faulty_outputs);

    let case = if corrupted_inputs.is_empty() {
        ToleranceCase::NotAffected
    } else if corrupted_outputs.is_empty() {
        ToleranceCase::Masked
    } else if max_output_error < max_input_error {
        ToleranceCase::Attenuated
    } else {
        ToleranceCase::Propagated
    };

    IoComparison {
        corrupted_inputs,
        corrupted_outputs,
        max_input_error,
        max_output_error,
        case,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftkr_ir::{BinKind, FunctionId, ValueId};
    use ftkr_vm::{EventKind, ResolvedEvent, Trace};

    fn ev(
        reads: Vec<(Location, Value)>,
        write: Option<(Location, Value)>,
    ) -> ResolvedEvent {
        ResolvedEvent {
            func: FunctionId(0),
            frame: 0,
            inst: ValueId(0),
            line: 1,
            kind: EventKind::Bin(BinKind::FAdd),
            reads,
            write,
        }
    }

    /// One-event region followed by a read of m[1] (so m[1] is an output).
    fn region_trace(region: ResolvedEvent) -> Trace {
        Trace::from_resolved(vec![
            region,
            ev(vec![(Location::mem(1), Value::F(0.0))], None),
        ])
    }

    /// Region computing m[1] = m[0] * 0 — any error in m[0] is masked.
    fn masking_region(input: f64) -> Trace {
        region_trace(ev(
            vec![(Location::mem(0), Value::F(input))],
            Some((Location::mem(1), Value::F(input * 0.0))),
        ))
    }

    /// Region computing m[1] = m[0] (copy) — errors pass straight through.
    fn copying_region(input: f64) -> Trace {
        region_trace(ev(
            vec![(Location::mem(0), Value::F(input))],
            Some((Location::mem(1), Value::F(input))),
        ))
    }

    /// Region computing m[1] = (m[0] + 9*2.0) / 10 — averaging shrinks errors.
    fn averaging_region(input: f64) -> Trace {
        let out = (input + 18.0) / 10.0;
        region_trace(ev(
            vec![(Location::mem(0), Value::F(input))],
            Some((Location::mem(1), Value::F(out))),
        ))
    }

    /// Compare the one-event regions of two traces, using the rest of each
    /// trace as the "later" liveness window.
    fn compare(clean: &Trace, faulty: &Trace) -> IoComparison {
        let c = Dddg::from_slice(clean.slice(0, 1));
        let f = Dddg::from_slice(faulty.slice(0, 1));
        compare_io(&c, &f, clean.slice(1, 2), faulty.slice(1, 2))
    }

    #[test]
    fn clean_inputs_mean_not_affected() {
        let cmp = compare(&copying_region(2.0), &copying_region(2.0));
        assert_eq!(cmp.case, ToleranceCase::NotAffected);
        assert!(!cmp.case.is_tolerant());
    }

    #[test]
    fn masked_error_is_case_1() {
        let cmp = compare(&masking_region(2.0), &masking_region(2.5));
        assert_eq!(cmp.case, ToleranceCase::Masked);
        assert!(cmp.case.is_tolerant());
        assert_eq!(cmp.corrupted_inputs.len(), 1);
        assert!(cmp.corrupted_outputs.is_empty());
    }

    #[test]
    fn attenuated_error_is_case_2() {
        let cmp = compare(&averaging_region(2.0), &averaging_region(4.0));
        // input error = 1.0, output error = (2.2 vs 2.0) = 0.1
        assert_eq!(cmp.case, ToleranceCase::Attenuated);
        assert!(cmp.max_output_error < cmp.max_input_error);
    }

    #[test]
    fn propagated_error_is_not_tolerant() {
        let cmp = compare(&copying_region(2.0), &copying_region(4.0));
        assert_eq!(cmp.case, ToleranceCase::Propagated);
        assert!(!cmp.case.is_tolerant());
    }

    #[test]
    fn leaf_fallback_when_no_later_events() {
        let clean_t = copying_region(2.0);
        let faulty_t = copying_region(4.0);
        let clean = Dddg::from_slice(clean_t.slice(0, 1));
        let faulty = Dddg::from_slice(faulty_t.slice(0, 1));
        let cmp = compare_io(&clean, &faulty, clean_t.slice(1, 1), faulty_t.slice(1, 1));
        assert_eq!(cmp.case, ToleranceCase::Propagated);
    }
}
