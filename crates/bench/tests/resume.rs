//! Integration test for the campaign resume driver: a manifest with a
//! deleted and a corrupted shard report is resumed, re-executing exactly
//! those shards, and the merged tally is bit-identical to the monolithic
//! campaign.

use fliptracker::Session;
use ftkr_bench::shard::{manifest_shards, resume_manifest};
use ftkr_inject::{CampaignTarget, TargetClass};

fn write(path: &std::path::Path, text: &str) {
    std::fs::write(path, format!("{text}\n")).expect("write manifest file");
}

#[test]
fn resume_reexecutes_only_missing_and_corrupt_shards() {
    let session = Session::by_name("IS").expect("IS exists");
    let plan = session
        .plan(
            CampaignTarget::Region {
                name: session.app().regions[0].clone(),
            },
            TargetClass::Internal,
            24,
        )
        .expect("region resolves")
        .with_seed(4242);
    let monolithic = session.run_plan(&plan).expect("monolithic run");

    // Coordinator: write a 4-shard manifest and "execute" every shard.
    let dir = std::env::temp_dir().join(format!("ftkr-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create manifest dir");
    write(&dir.join("plan.json"), &plan.to_json());
    for (i, shard) in plan.shards(4).iter().enumerate() {
        write(&dir.join(format!("plan_shard_{i}.json")), &shard.to_json());
        let report = session.run_plan(shard).expect("shard run");
        write(&dir.join(format!("report_{i}.json")), &report.to_json());
    }
    assert_eq!(manifest_shards(&dir), vec![0, 1, 2, 3]);

    // A worker died before writing shard 2, and shard 1's report was
    // truncated mid-write.
    std::fs::remove_file(dir.join("report_2.json")).expect("delete report");
    std::fs::write(dir.join("report_1.json"), "{\"counts\":{\"succ").expect("corrupt report");

    let summary = resume_manifest(&dir).expect("resume succeeds");
    assert_eq!(summary.executed, vec![1, 2], "only the broken shards re-run");
    assert_eq!(summary.intact, vec![0, 3]);
    assert_eq!(summary.merged, monolithic);

    // The repaired reports landed on disk: a second resume is a no-op with
    // the same merged tally.
    let again = resume_manifest(&dir).expect("second resume succeeds");
    assert!(again.executed.is_empty());
    assert_eq!(again.intact, vec![0, 1, 2, 3]);
    assert_eq!(again.merged, monolithic);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_non_manifest_directories() {
    let dir = std::env::temp_dir().join(format!("ftkr-resume-empty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dir");
    assert!(resume_manifest(&dir).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
