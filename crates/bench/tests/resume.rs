//! Integration test for the campaign resume driver: a manifest with a
//! deleted, a truncated, and a taint-marked shard report is resumed,
//! re-executing exactly those shards, and the merged tally is bit-identical
//! to the monolithic campaign.

use fliptracker::Session;
use ftkr_bench::shard::{manifest_shards, resume_manifest, write_report, ShardError};
use ftkr_inject::{CampaignTarget, FailPlan, TargetClass};

fn write(path: &std::path::Path, text: &str) {
    std::fs::write(path, format!("{text}\n")).expect("write manifest file");
}

#[test]
fn resume_reexecutes_only_missing_corrupt_and_tainted_shards() {
    let session = Session::by_name("IS").expect("IS exists");
    let plan = session
        .plan(
            CampaignTarget::Region {
                name: session.app().regions[0].clone(),
            },
            TargetClass::Internal,
            24,
        )
        .expect("region resolves")
        .with_seed(4242);
    let monolithic = session.run_plan(&plan).expect("monolithic run");

    // Coordinator: write a 4-shard manifest and "execute" every shard
    // through the crash-consistent writer.
    let dir = std::env::temp_dir().join(format!("ftkr-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create manifest dir");
    write(&dir.join("plan.json"), &plan.to_json());
    for (i, shard) in plan.shards(4).iter().enumerate() {
        write(&dir.join(format!("plan_shard_{i}.json")), &shard.to_json());
        let report = session.run_plan(shard).expect("shard run");
        write_report(&dir.join(format!("report_{i}.json")), &report.to_json())
            .expect("write shard report");
    }
    assert_eq!(manifest_shards(&dir), vec![0, 1, 2, 3]);

    // Shard 1's report was truncated mid-write (the checksum footer catches
    // it), a worker died before writing shard 2, and shard 3's worker ran
    // under harness faults: its verifier panicked on some tests, so the
    // report is valid JSON with a valid checksum — but tainted.
    std::fs::write(dir.join("report_1.json"), "{\"counts\":{\"succ").expect("corrupt report");
    std::fs::remove_file(dir.join("report_2.json")).expect("delete report");
    let shard3 = &plan.shards(4)[3];
    let chaos = FailPlan {
        verifier_panic: 512,
        ..FailPlan::uniform(9, 0)
    };
    let tainted = session.run_plan_chaos(shard3, chaos).expect("chaos shard run");
    assert!(tainted.is_tainted(), "chaos must poison at least one verdict");
    write_report(&dir.join("report_3.json"), &tainted.to_json()).expect("write tainted report");

    let summary = resume_manifest(&dir).expect("resume succeeds");
    assert_eq!(summary.executed, vec![1, 2, 3], "only the broken shards re-run");
    assert_eq!(summary.intact, vec![0]);
    assert_eq!(summary.merged, monolithic);

    // The repaired reports landed on disk: a second resume is a no-op with
    // the same merged tally.
    let again = resume_manifest(&dir).expect("second resume succeeds");
    assert!(again.executed.is_empty());
    assert_eq!(again.intact, vec![0, 1, 2, 3]);
    assert_eq!(again.merged, monolithic);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_non_manifest_directories() {
    let dir = std::env::temp_dir().join(format!("ftkr-resume-empty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dir");
    assert!(matches!(
        resume_manifest(&dir),
        Err(ShardError::NotAManifest(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
