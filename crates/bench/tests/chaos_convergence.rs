//! Property suite for the chaos harness: campaigns are pure functions of
//! `(seed, index)`, so a sharded campaign executed under an *arbitrary*
//! seeded fail-point schedule — checkpoint-restore failures, verifier
//! panics, mid-write crashes, on-disk corruption, flaky I/O — must, once
//! [`resume_manifest`] repairs the manifest, produce a merged report
//! byte-identical to the undisturbed fault-free run.  The analyzed executor
//! has the same contract: a tainted analyzed report re-executed fault-free
//! reconverges to the undisturbed analysis.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use fliptracker::Session;
use ftkr_bench::shard::{resume_manifest, write_report_chaos};
use ftkr_inject::{CampaignPlan, CampaignTarget, FailPlan, TargetClass};
use proptest::prelude::*;

const N_TESTS: u64 = 12;
const K_SHARDS: usize = 3;

/// Monotone counter so concurrent proptest cases never share a scratch dir.
static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ftkr-chaos-{tag}-{}-{n}", std::process::id()))
}

/// The standard small campaign the properties run: the app's first named
/// region, internal sites, a fixed seed — cheap enough to execute a handful
/// of times per proptest case.
fn region_plan(session: &Session) -> CampaignPlan {
    session
        .plan(
            CampaignTarget::Region {
                name: session.app().regions[0].clone(),
            },
            TargetClass::Internal,
            N_TESTS,
        )
        .expect("registry region resolves")
        .with_seed(0xF1A6)
}

/// Run the full coordinator story for one app under one fail-point schedule:
/// shard the plan, execute every shard with chaos armed (in the executor
/// *and* in the report writer), then resume the manifest fault-free and
/// demand bit-identical convergence with the undisturbed monolithic run.
fn assert_manifest_converges(app: &str, chaos: FailPlan) {
    let session = Session::by_name(app).unwrap_or_else(|| panic!("{app} exists"));
    let plan = region_plan(&session);
    let reference = session.run_plan(&plan).expect("fault-free reference run");

    let dir = scratch_dir(app);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create manifest dir");
    for (i, shard) in plan.shards(K_SHARDS).iter().enumerate() {
        std::fs::write(dir.join(format!("plan_shard_{i}.json")), shard.to_json())
            .expect("write shard plan");
        let report = session.run_plan_chaos(shard, chaos).expect("chaos shard run");
        // The write itself runs under the same schedule: it may tear (no
        // file), corrupt (checksum catches it), or succeed with a tainted
        // payload — resume must repair all three.
        let _ = write_report_chaos(
            &dir.join(format!("report_{i}.json")),
            &report.to_json(),
            chaos,
            i as u64,
        );
    }

    let summary = resume_manifest(&dir).expect("resume succeeds");
    assert_eq!(
        summary.merged, reference,
        "{app}: resumed merge differs from the undisturbed run under {chaos:?}"
    );
    assert_eq!(summary.merged.to_json(), reference.to_json());

    // Recovery is idempotent: a second resume finds only intact shards and
    // re-executes nothing.
    let again = resume_manifest(&dir).expect("second resume succeeds");
    assert!(again.executed.is_empty(), "{app}: resume must be idempotent");
    assert_eq!(again.merged, reference);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The analyzed twin: chaos either leaves the report untainted (in which
/// case it is already byte-identical to the undisturbed analysis) or taints
/// it, and the fault-free re-execution — what resume does for a tainted
/// shard — reconverges exactly.
fn assert_analyzed_reconverges(app: &str, chaos: FailPlan) {
    let session = Session::by_name(app).unwrap_or_else(|| panic!("{app} exists"));
    let plan = region_plan(&session);
    let reference = session.run_plan_analyzed(&plan).expect("fault-free analysis");
    let chaotic = session
        .run_plan_analyzed_chaos(&plan, chaos)
        .expect("chaos analysis");
    if chaotic.report.is_tainted() {
        let rerun = session.run_plan_analyzed(&plan).expect("recovery re-run");
        assert_eq!(
            rerun.to_json(),
            reference.to_json(),
            "{app}: fault-free re-run after taint must reconverge"
        );
    } else {
        // Nothing fired: restore failures and verifier panics both taint, so
        // an untainted chaotic report must already be the reference.
        assert_eq!(
            chaotic.to_json(),
            reference.to_json(),
            "{app}: untainted chaos run must be byte-identical under {chaos:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn sharded_chaos_converges_on_is(
        seed in any::<u64>(),
        restore_fail in 0u16..321,
        verifier_panic in 0u16..321,
        write_crash in 0u16..321,
        corrupt_report in 0u16..321,
        transient_io in 0u16..321,
    ) {
        assert_manifest_converges("IS", FailPlan {
            seed, restore_fail, verifier_panic, write_crash, corrupt_report, transient_io,
            worker_job: 0,
        });
    }

    #[test]
    fn sharded_chaos_converges_on_lu(
        seed in any::<u64>(),
        restore_fail in 0u16..321,
        verifier_panic in 0u16..321,
        write_crash in 0u16..321,
        corrupt_report in 0u16..321,
        transient_io in 0u16..321,
    ) {
        assert_manifest_converges("LU", FailPlan {
            seed, restore_fail, verifier_panic, write_crash, corrupt_report, transient_io,
            worker_job: 0,
        });
    }

    #[test]
    fn sharded_chaos_converges_on_mg(
        seed in any::<u64>(),
        restore_fail in 0u16..321,
        verifier_panic in 0u16..321,
        write_crash in 0u16..321,
        corrupt_report in 0u16..321,
        transient_io in 0u16..321,
    ) {
        assert_manifest_converges("MG", FailPlan {
            seed, restore_fail, verifier_panic, write_crash, corrupt_report, transient_io,
            worker_job: 0,
        });
    }

    #[test]
    fn analyzed_chaos_reconverges(
        app_idx in 0usize..3,
        seed in any::<u64>(),
        restore_fail in 0u16..321,
        verifier_panic in 0u16..321,
    ) {
        let app = ["IS", "LU", "MG"][app_idx];
        assert_analyzed_reconverges(app, FailPlan {
            seed, restore_fail, verifier_panic,
            write_crash: 0, corrupt_report: 0, transient_io: 0, worker_job: 0,
        });
    }
}
