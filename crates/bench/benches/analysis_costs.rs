//! Criterion micro-benchmarks of the FlipTracker analysis machinery: trace
//! generation, code-region partitioning, DDDG construction, ACL construction
//! and pattern detection — the ablation costs DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, Criterion};

use ftkr_acl::AclTable;
use ftkr_dddg::Dddg;
use ftkr_patterns::{analyze_fused, detect_fused_patterns};
use ftkr_trace::{instance_slice, partition_regions, RegionSelector};
use ftkr_vm::{EventKind, FaultSpec, Trace, Vm, VmConfig};

fn analysis_costs(c: &mut Criterion) {
    let app = ftkr_apps::mg();
    let clean_run = Vm::new(VmConfig::tracing()).run(&app.module).unwrap();
    let clean = clean_run.trace.clone().unwrap();
    let fault = FaultSpec::in_result(clean.len() as u64 / 3, 40);
    let faulty = Vm::new(VmConfig::tracing_with_fault(fault))
        .run(&app.module)
        .unwrap()
        .trace
        .unwrap();

    let mut group = c.benchmark_group("analysis");

    group.bench_function("trace_generation_mg", |b| {
        b.iter(|| {
            Vm::new(VmConfig::tracing())
                .run(std::hint::black_box(&app.module))
                .unwrap()
                .steps
        })
    });

    group.bench_function("trace_generation_mg_presized", |b| {
        b.iter(|| {
            Vm::new(VmConfig::tracing_sized(clean_run.steps))
                .run(std::hint::black_box(&app.module))
                .unwrap()
                .steps
        })
    });

    group.bench_function("untraced_execution_mg", |b| {
        b.iter(|| {
            Vm::new(VmConfig::default())
                .run(std::hint::black_box(&app.module))
                .unwrap()
                .steps
        })
    });

    // Region-scoped tracing of the largest first-level region instance.
    let scoped_regions =
        partition_regions(&clean, &app.module, &RegionSelector::FirstLevelInner);
    let scoped = scoped_regions
        .iter()
        .max_by_key(|r| r.len())
        .expect("MG has regions");
    group.bench_function("region_scoped_tracing_mg", |b| {
        b.iter(|| {
            Vm::new(VmConfig::tracing_region(
                scoped.start as u64,
                scoped.end as u64,
            ))
            .run(std::hint::black_box(&app.module))
            .unwrap()
            .steps
        })
    });

    group.bench_function("region_partitioning_mg", |b| {
        b.iter(|| {
            partition_regions(
                std::hint::black_box(&clean),
                &app.module,
                &RegionSelector::FirstLevelInner,
            )
            .len()
        })
    });

    let regions = partition_regions(&clean, &app.module, &RegionSelector::FirstLevelInner);
    let biggest = regions
        .iter()
        .max_by_key(|r| r.len())
        .expect("MG has regions")
        .clone();
    group.bench_function("dddg_construction_largest_region", |b| {
        b.iter(|| Dddg::from_slice(std::hint::black_box(instance_slice(&clean, &biggest))).num_nodes())
    });

    group.bench_function("acl_construction_mg", |b| {
        b.iter(|| AclTable::from_fault(std::hint::black_box(&faulty), &fault).max_count())
    });

    group.finish();

    // ---- the fused per-injection analysis pipeline --------------------
    //
    // Two representative injections: the historical benchmark fault (which
    // crashes the run early — the common campaign outcome, and the exact
    // definition the seed baseline measured `acl_construction_mg` /
    // `pattern_detection_mg` against, so `bench_report` can still compute
    // the fused-vs-seed trajectory), and a fully-propagating fault whose
    // taint stays alive to the end of the run (the worst case for the
    // detectors).
    let mut group = c.benchmark_group("analysis_fused");
    let taint_step = (clean.len() / 3..clean.len())
        .find(|&i| {
            clean.events[i].write.is_some()
                && matches!(clean.events[i].kind, EventKind::Bin(k) if k.is_float())
        })
        .expect("MG has float arithmetic");
    let taint_fault = FaultSpec::in_result(taint_step as u64, 40);
    let taint_faulty = Vm::new(VmConfig::tracing_with_fault(taint_fault))
        .run(&app.module)
        .unwrap()
        .trace
        .unwrap();

    let cases: [(&str, FaultSpec, &Trace); 2] = [
        ("crash_mg", fault, &faulty),
        ("taint_mg", taint_fault, &taint_faulty),
    ];
    for (label, case_fault, case_faulty) in cases {
        group.bench_function(format!("single_walk_{label}"), |b| {
            b.iter(|| {
                detect_fused_patterns(std::hint::black_box(case_faulty), &clean, case_fault).len()
            })
        });
        group.bench_function(format!("acl_and_patterns_walk_{label}"), |b| {
            b.iter(|| {
                let fused = analyze_fused(std::hint::black_box(case_faulty), &clean, &case_fault);
                fused.acl.max_count() as usize + fused.patterns.len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = analysis_costs
}
criterion_main!(benches);
