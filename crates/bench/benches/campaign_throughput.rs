//! Criterion benchmark of fault-injection campaign throughput (faulty runs
//! per second), serial vs. rayon-parallel, on the IS kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ftkr_inject::{internal_sites, Campaign};
use ftkr_vm::{Vm, VmConfig};

fn campaign_throughput(c: &mut Criterion) {
    let app = ftkr_apps::is();
    let clean_run = Vm::new(VmConfig::tracing()).run(&app.module).unwrap();
    let clean = clean_run.trace.unwrap();
    let sites = internal_sites(&clean, 0, clean.len());
    let max_steps = clean_run.steps * 10 + 10_000;

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    for n_tests in [16u64, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("is_internal_sites", n_tests),
            &n_tests,
            |b, &n| {
                b.iter(|| {
                    Campaign::new(&app.module, |r| app.verify(r))
                        .with_max_steps(max_steps)
                        .run(std::hint::black_box(&sites), n)
                        .counts
                        .total()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, campaign_throughput);
criterion_main!(benches);
