//! Criterion benchmark of fault-injection campaign throughput (faulty runs
//! per second), serial vs. rayon-parallel, on the IS kernel — plus the
//! per-injection cost of the analyzed campaign paths on MG: materialized
//! (traced faulty run + ACL + detectors) vs. streaming (patterns detected as
//! the run executes, no faulty trace ever recorded).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ftkr_inject::{internal_sites, Campaign};
use ftkr_patterns::{analyze_fused, detect_streaming};
use ftkr_vm::{EventKind, FaultSpec, Vm, VmConfig};

fn campaign_throughput(c: &mut Criterion) {
    let app = ftkr_apps::is();
    let clean_run = Vm::new(VmConfig::tracing()).run(&app.module).unwrap();
    let clean = clean_run.trace.unwrap();
    let sites = internal_sites(&clean, 0, clean.len());
    let max_steps = clean_run.steps * 10 + 10_000;

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    for n_tests in [16u64, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("is_internal_sites", n_tests),
            &n_tests,
            |b, &n| {
                b.iter(|| {
                    Campaign::new(&app.module, |r| app.verify(r))
                        .with_max_steps(max_steps)
                        .run(std::hint::black_box(&sites), n)
                        .counts
                        .total()
                })
            },
        );
    }
    group.finish();

    // ---- analyzed campaigns: per-injection outcome + pattern analysis ----
    let app = ftkr_apps::mg();
    let clean_run = Vm::new(VmConfig::tracing()).run(&app.module).unwrap();
    let clean = clean_run.trace.unwrap();
    // A fully-propagating fault: the expensive case for both paths.
    let step = (clean.len() / 3..clean.len())
        .find(|&i| {
            clean.events[i].write.is_some()
                && matches!(clean.events[i].kind, EventKind::Bin(k) if k.is_float())
        })
        .expect("MG has float arithmetic");
    let fault = FaultSpec::in_result(step as u64, 40);
    let max_steps = clean_run.steps * 10 + 10_000;

    let mut group = c.benchmark_group("campaign_streaming");
    group.sample_size(10);
    group.bench_function("injection_materialized_mg", |b| {
        b.iter(|| {
            // The materialized per-injection analysis: record the faulty
            // trace, then run the fused ACL + detector walk over it.
            let config = VmConfig {
                record_trace: true,
                trace_hint: Some(clean_run.steps),
                fault: Some(fault),
                max_steps,
                ..VmConfig::default()
            };
            let run = Vm::new(config)
                .run(std::hint::black_box(&app.module))
                .unwrap();
            let faulty = run.trace.unwrap();
            let fused = analyze_fused(&faulty, &clean, &fault);
            fused.acl.max_count() as usize + fused.patterns.len()
        })
    });
    group.bench_function("injection_streaming_mg", |b| {
        b.iter(|| {
            let config = VmConfig {
                max_steps,
                ..VmConfig::default()
            };
            let (_run, patterns) = detect_streaming(
                std::hint::black_box(&app.module),
                &clean,
                fault,
                config,
            );
            patterns.len()
        })
    });
    group.finish();
}

criterion_group!(benches, campaign_throughput);
criterion_main!(benches);
