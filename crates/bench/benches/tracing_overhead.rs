//! Criterion benchmark behind Figure 4: the cost of dynamic tracing, per
//! application and with the SPMD (multi-rank) driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ftkr_mpi::{run_spmd, ReduceOp};
use ftkr_vm::{Vm, VmConfig};

fn tracing_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracing_overhead");
    group.sample_size(10);
    for app in [ftkr_apps::cg(), ftkr_apps::mg(), ftkr_apps::kmeans()] {
        group.bench_with_input(
            BenchmarkId::new("plain", app.name),
            &app,
            |b, app| {
                b.iter(|| Vm::new(VmConfig::default()).run(&app.module).unwrap().steps)
            },
        );
        group.bench_with_input(
            BenchmarkId::new("traced", app.name),
            &app,
            |b, app| {
                b.iter(|| Vm::new(VmConfig::tracing()).run(&app.module).unwrap().steps)
            },
        );
    }

    let app = ftkr_apps::mg();
    for ranks in [4usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("spmd_traced_mg", ranks),
            &ranks,
            |b, &ranks| {
                b.iter(|| {
                    run_spmd(ranks, |mut comm| {
                        let r = Vm::new(VmConfig::tracing()).run(&app.module).unwrap();
                        comm.allreduce_scalar(r.steps as f64, ReduceOp::Sum)
                    })
                    .unwrap()
                    .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, tracing_overhead);
criterion_main!(benches);
