//! Criterion benchmark behind Figure 4: the cost of dynamic tracing, per
//! application and with the SPMD (multi-rank) driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ftkr_mpi::{run_spmd, ReduceOp};
use ftkr_vm::{Vm, VmConfig};

fn tracing_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracing_overhead");
    group.sample_size(10);
    for app in [ftkr_apps::cg(), ftkr_apps::mg(), ftkr_apps::kmeans()] {
        group.bench_with_input(
            BenchmarkId::new("plain", app.name),
            &app,
            |b, app| {
                b.iter(|| Vm::new(VmConfig::default()).run(&app.module).unwrap().steps)
            },
        );
        group.bench_with_input(
            BenchmarkId::new("traced", app.name),
            &app,
            |b, app| {
                b.iter(|| Vm::new(VmConfig::tracing()).run(&app.module).unwrap().steps)
            },
        );
        // Marker elision (`TraceOpts::skip_markers`): loop markers move to
        // the compact out-of-band table instead of the event stream.
        group.bench_with_input(
            BenchmarkId::new("traced_skip_markers", app.name),
            &app,
            |b, app| {
                b.iter(|| {
                    Vm::new(VmConfig::tracing().without_markers())
                        .run(&app.module)
                        .unwrap()
                        .steps
                })
            },
        );
    }

    let app = ftkr_apps::mg();
    for ranks in [4usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("spmd_traced_mg", ranks),
            &ranks,
            |b, &ranks| {
                b.iter(|| {
                    run_spmd(ranks, |mut comm| {
                        let r = Vm::new(VmConfig::tracing()).run(&app.module).unwrap();
                        comm.allreduce_scalar(r.steps as f64, ReduceOp::Sum)
                    })
                    .unwrap()
                    .len()
                })
            },
        );
    }

    // The Figure-5 shard-executor path: deriving one region's internal site
    // list in a fresh session, from a full reference trace vs. from a
    // region-scoped `TraceScope::Window` re-run (the window a CampaignPlan
    // carries).  The window path is what keeps per-region campaign shards
    // from recording full traces.  Measured on MG (original) and LU
    // (promoted), so the promoted apps' shard path is tracked too.
    type AppCtor = fn() -> ftkr_apps::App;
    let fig5_apps: [(&str, AppCtor, &str); 2] =
        [("MG", ftkr_apps::mg, "mg_a"), ("LU", ftkr_apps::lu, "lu_rhs")];
    for (name, app_fn, region) in fig5_apps {
        let coordinator = fliptracker::Session::new(app_fn());
        let target = ftkr_inject::CampaignTarget::Region {
            name: region.to_string(),
        };
        let (start, end) = coordinator
            .target_window(&target)
            .expect("region resolves");
        group.bench_with_input(
            BenchmarkId::new("fig5_sites_full", name),
            &target,
            |b, target| {
                b.iter(|| {
                    let session = fliptracker::Session::new(app_fn());
                    session
                        .sites(target, ftkr_inject::TargetClass::Internal)
                        .unwrap()
                        .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fig5_sites_window", name),
            &target,
            |b, target| {
                b.iter(|| {
                    let plan = ftkr_inject::CampaignPlan::new(
                        name,
                        target.clone(),
                        ftkr_inject::TargetClass::Internal,
                        0,
                    )
                    .with_window(start, end);
                    let session = fliptracker::Session::new(app_fn());
                    session.run_plan(&plan).unwrap().population
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, tracing_overhead);
criterion_main!(benches);
