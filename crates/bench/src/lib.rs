//! `ftkr-bench` — experiment harness reproducing every table and figure of
//! the FlipTracker paper, plus Criterion micro-benchmarks of the analysis
//! machinery itself.
//!
//! Each binary regenerates one artifact (run with `--release`):
//!
//! | target | artifact |
//! |---|---|
//! | `table1` | Table I — patterns per code region |
//! | `fig4_tracing_overhead` | Figure 4 — parallel tracing overhead |
//! | `fig5_per_region` | Figure 5 — success rate per code region |
//! | `fig6_per_iteration` | Figure 6 — success rate per main-loop iteration |
//! | `fig7_lulesh_acl` | Figure 7 — ACL trajectory in LULESH |
//! | `table2_mg_error_magnitude` | Table II — error magnitude across `mg3P` calls |
//! | `table3_cg_hardening` | Table III — Use Case 1, hardening CG |
//! | `table4_prediction` | Table IV — Use Case 2, resilience prediction |
//!
//! Every binary accepts an effort level (`quick`, `standard`, `paper`) as its
//! first argument and `--json` to additionally emit machine-readable output.

pub mod shard;

use fliptracker::Effort;

/// Parse the common harness command line: effort level plus `--json`.
pub fn harness_args() -> (Effort, bool) {
    let mut effort = Effort::standard();
    let mut json = false;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else {
            effort = Effort::from_name(&arg);
        }
    }
    (effort, json)
}

/// Print a result: its text rendering, optionally followed by JSON.
pub fn emit<T: serde::Serialize>(text: String, value: &T, json: bool) {
    print!("{text}");
    if json {
        println!(
            "\n--- json ---\n{}",
            serde_json::to_string_pretty(value).expect("results serialize")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_harness_args_are_standard_effort() {
        let (effort, json) = harness_args();
        assert_eq!(effort, Effort::standard());
        assert!(!json);
    }
}
