//! Merge fresh Criterion-style medians with the recorded seed baseline into
//! `BENCH_fliptracker.json`, so the workspace's perf trajectory is tracked
//! from PR to PR.
//!
//! ```sh
//! bench_report <fresh.jsonl> <baseline.jsonl> <out.json>
//! ```
//!
//! Both inputs are JSON-lines files of
//! `{"name": ..., "median_ns": ..., "samples": ...}` records — the format the
//! vendored criterion shim appends when `CRITERION_JSON` is set (see
//! `ci.sh bench`, which wires the whole flow).

use std::collections::BTreeMap;

use serde::Serialize;

/// Before/after medians of one benchmark.
#[derive(Debug, Clone, Serialize)]
struct BenchEntry {
    /// Benchmark name (`group/function[/param]`).
    name: String,
    /// Seed ("before") median in nanoseconds, when recorded.
    before_ns: Option<u64>,
    /// Fresh ("after") median in nanoseconds.
    after_ns: Option<u64>,
    /// `before_ns / after_ns` — above 1.0 means faster than the seed.
    speedup: Option<f64>,
}

/// The whole report.
#[derive(Debug, Clone, Serialize)]
struct Report {
    /// Per-benchmark before/after medians.
    benchmarks: Vec<BenchEntry>,
    /// Tracing overhead ratio (traced / plain wall time, MG) before/after —
    /// the paper's Figure-4 cost, tracked by the ROADMAP.
    tracing_overhead_ratio_mg_before: Option<f64>,
    tracing_overhead_ratio_mg_after: Option<f64>,
    /// ACL construction speedup vs the seed (the Table-I hot path).
    acl_construction_speedup: Option<f64>,
    /// Figure-5 per-region site derivation: wall-time speedup of the
    /// `TraceScope::Window` shard path over a full reference trace (MG,
    /// region `mg_a`; fresh medians on both sides).
    fig5_window_site_derivation_speedup: Option<f64>,
    /// Figure-5 per-region tracing footprint: recorded events of the full
    /// reference trace over the `TraceScope::Window` trace (MG, `mg_a`) —
    /// how much trace memory the window path avoids.
    fig5_window_traced_events_ratio: Option<f64>,
    /// Figure-5 per-region site derivation for the promoted LU app
    /// (`lu_rhs`): wall-time speedup of the `TraceScope::Window` shard path
    /// over a full reference trace.
    fig5_window_site_derivation_speedup_lu: Option<f64>,
    /// Figure-5 per-region tracing footprint for the promoted LU app:
    /// recorded events of the full reference trace over the
    /// `TraceScope::Window` trace (`lu_rhs`).
    fig5_window_traced_events_ratio_lu: Option<f64>,
    /// Tracing overhead ratio (traced / plain, MG) with loop markers elided
    /// (`TraceOpts::skip_markers`) — the residual-overhead knob.
    tracing_overhead_ratio_mg_skip_markers: Option<f64>,
    /// Fused single-walk pattern analysis vs the *seed's* per-injection
    /// analysis stages (`acl_construction_mg` + `pattern_detection_mg`,
    /// same fault definition) — the trajectory-since-seed view.
    analysis_fused_vs_seed_speedup_mg: Option<f64>,
    /// Per-injection analyzed-campaign wall time: materialized faulty trace
    /// + legacy passes vs the streaming no-materialization path (MG).
    campaign_streaming_injection_speedup_mg: Option<f64>,
    /// Event-footprint win of the streaming campaign path: events the
    /// materialized faulty trace holds per injection vs the interned
    /// locations (the only per-run state) the streamed run retains.
    campaign_streaming_resident_events_ratio_mg: Option<f64>,
    /// Fork-point checkpoint executor vs cold-start executor: campaign wall
    /// time on LU region `lu_blts` (`Session::run_plan_cold` over
    /// `Session::run_plan`, warm checkpoint).
    campaign_checkpoint_speedup_lu: Option<f64>,
    /// Fork-point vs cold campaign wall time on MG region `mg_a`.
    campaign_checkpoint_speedup_mg: Option<f64>,
    /// Fork-point vs cold campaign wall time on LU's *last* main-loop
    /// iteration — the latest window in the registry, so the fork path skips
    /// nearly the whole clean prefix on every test.
    campaign_checkpoint_speedup_lu_last_iteration: Option<f64>,
    /// One-time snapshot capture cost on the LU last-iteration target, in
    /// nanoseconds (amortized over every test of the campaign).
    campaign_checkpoint_capture_ns_lu_last_iteration: Option<u64>,
    /// Per-test restore cost on the LU last-iteration target, in nanoseconds
    /// (a resume stopped at the snapshot's own step — pure restoration).
    campaign_checkpoint_restore_ns_lu_last_iteration: Option<u64>,
    /// Snapshot footprint on the LU last-iteration target: live memory cells
    /// captured in the image.
    campaign_checkpoint_snapshot_cells_lu_last_iteration: Option<u64>,
    /// Pre-decoded dispatch tables vs the legacy per-`Op` interpreter:
    /// fault-free MG wall time (both paths held bit-identical before the
    /// medians are recorded).
    vm_decode_speedup_mg: Option<f64>,
    /// Pre-decoded dispatch tables vs the legacy interpreter on the
    /// promoted LU app.
    vm_decode_speedup_lu: Option<f64>,
    /// Batched lockstep executor vs the serial campaign on MG's masked
    /// case (dead-window memory faults): masked lanes are classified from
    /// the clean-trace sweep instead of executing a faulty run each.
    campaign_batched_masked_speedup_mg: Option<f64>,
    /// Batched lockstep executor vs the serial campaign on LU's masked
    /// case.
    campaign_batched_masked_speedup_lu: Option<f64>,
    /// Cost of the per-test panic-isolation perimeter: one faulty-run
    /// execution inside `catch_unwind` over the raw run (IS).  ~1.0 means
    /// the robustness layer is free on the campaign hot path.
    campaign_catch_unwind_overhead_ratio: Option<f64>,
    /// Cost of crash-consistent report persistence: an atomic temp-file +
    /// checksum-footer write over a plain `fs::write` of the same payload
    /// (IS).  Reports are written once per shard, so even a few × is noise
    /// next to the campaign itself.
    campaign_report_checksum_write_overhead_ratio: Option<f64>,
    /// Campaign-server submit→final latency against a cold daemon (LU): the
    /// first submission pays the clean run, site derivation, and checkpoint
    /// capture of a fresh session.
    serve_submit_latency_cold_ns_lu: Option<u64>,
    /// Campaign-server submit→final latency once the daemon's session cache
    /// is hot (LU): the expensive artifacts are shared, so the job is
    /// injection work only.
    serve_submit_latency_warm_ns_lu: Option<u64>,
    /// Cold over warm submit→final latency (LU) — what keeping sessions
    /// resident buys every submission after the first.
    serve_cache_hit_speedup_lu: Option<f64>,
    /// Wall time of a 4-rank SPMD campaign over the same campaign executed
    /// as one-rank jobs (MG, identical computation-fault population): what
    /// the per-test exchange protocol and divergence comparison cost.
    campaign_spmd_overhead_ratio_mg: Option<f64>,
    /// Of the 4-rank MG tests whose corruption became observable
    /// (computation and message populations combined), the fraction that
    /// stayed inside the injected rank instead of crossing a communicator
    /// boundary.
    spmd_containment_rate_mg: Option<f64>,
}

/// Parse one `{"name":...,"median_ns":...}` timing line or one
/// `{"name":...,"count":...}` footprint line of the JSONL input (flat
/// formats under our control — no full JSON parse needed).
fn parse_line(line: &str, key: &str) -> Option<(String, u64)> {
    let name = line.split("\"name\":\"").nth(1)?.split('"').next()?;
    let value = line
        .split(&format!("\"{key}\":"))
        .nth(1)?
        .split(|c: char| !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()?;
    Some((name.to_string(), value))
}

/// Timing medians and footprint counters of a JSONL collection file, kept
/// separate so counters never masquerade as nanoseconds in the report.
fn load(path: &str) -> (BTreeMap<String, u64>, BTreeMap<String, u64>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("bench_report: warning: cannot read {path}; treating as empty");
        return (BTreeMap::new(), BTreeMap::new());
    };
    // Later lines win, so re-running a bench within one collection session
    // records the freshest value.
    let medians = text
        .lines()
        .filter_map(|l| parse_line(l, "median_ns"))
        .collect();
    let counts = text
        .lines()
        .filter_map(|l| parse_line(l, "count"))
        .collect();
    (medians, counts)
}

fn ratio(num: Option<&u64>, den: Option<&u64>) -> Option<f64> {
    match (num, den) {
        (Some(&n), Some(&d)) if d > 0 => Some(n as f64 / d as f64),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [fresh_path, baseline_path, out_path] = match args.as_slice() {
        [a, b, c] => [a.clone(), b.clone(), c.clone()],
        _ => {
            eprintln!("usage: bench_report <fresh.jsonl> <baseline.jsonl> <out.json>");
            std::process::exit(2);
        }
    };

    let (fresh, fresh_counts) = load(&fresh_path);
    let (baseline, _) = load(&baseline_path);

    let mut names: Vec<&String> = baseline.keys().chain(fresh.keys()).collect();
    names.sort();
    names.dedup();

    let benchmarks: Vec<BenchEntry> = names
        .into_iter()
        .map(|name| {
            let before_ns = baseline.get(name).copied();
            let after_ns = fresh.get(name).copied();
            BenchEntry {
                name: name.clone(),
                before_ns,
                after_ns,
                speedup: ratio(before_ns.as_ref(), after_ns.as_ref()),
            }
        })
        .collect();

    let report = Report {
        tracing_overhead_ratio_mg_before: ratio(
            baseline.get("tracing_overhead/traced/MG"),
            baseline.get("tracing_overhead/plain/MG"),
        ),
        tracing_overhead_ratio_mg_after: ratio(
            fresh.get("tracing_overhead/traced/MG"),
            fresh.get("tracing_overhead/plain/MG"),
        ),
        acl_construction_speedup: ratio(
            baseline.get("analysis/acl_construction_mg"),
            fresh.get("analysis/acl_construction_mg"),
        ),
        fig5_window_site_derivation_speedup: ratio(
            fresh.get("tracing_overhead/fig5_sites_full/MG"),
            fresh.get("tracing_overhead/fig5_sites_window/MG"),
        ),
        fig5_window_traced_events_ratio: ratio(
            fresh_counts.get("fig5_trace/full_events/MG"),
            fresh_counts.get("fig5_trace/window_events/MG"),
        ),
        fig5_window_site_derivation_speedup_lu: ratio(
            fresh.get("tracing_overhead/fig5_sites_full/LU"),
            fresh.get("tracing_overhead/fig5_sites_window/LU"),
        ),
        fig5_window_traced_events_ratio_lu: ratio(
            fresh_counts.get("fig5_trace/full_events/LU"),
            fresh_counts.get("fig5_trace/window_events/LU"),
        ),
        tracing_overhead_ratio_mg_skip_markers: ratio(
            fresh.get("tracing_overhead/traced_skip_markers/MG"),
            fresh.get("tracing_overhead/plain/MG"),
        ),
        analysis_fused_vs_seed_speedup_mg: match (
            baseline.get("analysis/acl_construction_mg"),
            baseline.get("analysis/pattern_detection_mg"),
            fresh.get("analysis_fused/single_walk_crash_mg"),
        ) {
            (Some(&acl), Some(&det), Some(&fused)) if fused > 0 => {
                Some((acl + det) as f64 / fused as f64)
            }
            _ => None,
        },
        campaign_streaming_injection_speedup_mg: ratio(
            fresh.get("campaign_streaming/injection_materialized_mg"),
            fresh.get("campaign_streaming/injection_streaming_mg"),
        ),
        campaign_streaming_resident_events_ratio_mg: ratio(
            fresh_counts.get("campaign_streaming/materialized_trace_events/MG"),
            fresh_counts.get("campaign_streaming/streaming_resident_locations/MG"),
        ),
        campaign_checkpoint_speedup_lu: ratio(
            fresh.get("campaign_checkpoint/cold/LU@lu_blts"),
            fresh.get("campaign_checkpoint/fork/LU@lu_blts"),
        ),
        campaign_checkpoint_speedup_mg: ratio(
            fresh.get("campaign_checkpoint/cold/MG@mg_a"),
            fresh.get("campaign_checkpoint/fork/MG@mg_a"),
        ),
        campaign_checkpoint_speedup_lu_last_iteration: ratio(
            fresh.get("campaign_checkpoint/cold/LU@iter_last"),
            fresh.get("campaign_checkpoint/fork/LU@iter_last"),
        ),
        campaign_checkpoint_capture_ns_lu_last_iteration: fresh
            .get("campaign_checkpoint/capture/LU@iter_last")
            .copied(),
        campaign_checkpoint_restore_ns_lu_last_iteration: fresh
            .get("campaign_checkpoint/restore/LU@iter_last")
            .copied(),
        campaign_checkpoint_snapshot_cells_lu_last_iteration: fresh_counts
            .get("campaign_checkpoint/snapshot_cells/LU@iter_last")
            .copied(),
        vm_decode_speedup_mg: ratio(
            fresh.get("vm_decode/legacy/MG"),
            fresh.get("vm_decode/decoded/MG"),
        ),
        vm_decode_speedup_lu: ratio(
            fresh.get("vm_decode/legacy/LU"),
            fresh.get("vm_decode/decoded/LU"),
        ),
        campaign_batched_masked_speedup_mg: ratio(
            fresh.get("campaign_batched/serial/MG@masked"),
            fresh.get("campaign_batched/batched/MG@masked"),
        ),
        campaign_batched_masked_speedup_lu: ratio(
            fresh.get("campaign_batched/serial/LU@masked"),
            fresh.get("campaign_batched/batched/LU@masked"),
        ),
        campaign_catch_unwind_overhead_ratio: ratio(
            fresh.get("campaign_robustness/vm_run_caught/IS"),
            fresh.get("campaign_robustness/vm_run_raw/IS"),
        ),
        campaign_report_checksum_write_overhead_ratio: ratio(
            fresh.get("campaign_robustness/report_write_atomic/IS"),
            fresh.get("campaign_robustness/report_write_plain/IS"),
        ),
        serve_submit_latency_cold_ns_lu: fresh.get("campaign_serve/submit_cold/LU").copied(),
        serve_submit_latency_warm_ns_lu: fresh.get("campaign_serve/submit_warm/LU").copied(),
        serve_cache_hit_speedup_lu: ratio(
            fresh.get("campaign_serve/submit_cold/LU"),
            fresh.get("campaign_serve/submit_warm/LU"),
        ),
        campaign_spmd_overhead_ratio_mg: ratio(
            fresh.get("campaign_spmd/spmd4/MG"),
            fresh.get("campaign_spmd/serial/MG"),
        ),
        spmd_containment_rate_mg: ratio(
            fresh_counts.get("campaign_spmd/contained4/MG"),
            fresh_counts.get("campaign_spmd/divergent4/MG"),
        ),
        benchmarks,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json).expect("write report");
    println!("bench_report: wrote {out_path}");
    if let (Some(b), Some(a)) = (
        report.tracing_overhead_ratio_mg_before,
        report.tracing_overhead_ratio_mg_after,
    ) {
        println!("bench_report: tracing overhead ratio (MG): {b:.2}x -> {a:.2}x");
    }
    if let Some(s) = report.acl_construction_speedup {
        println!("bench_report: ACL construction speedup vs seed: {s:.2}x");
    }
    if let Some(s) = report.fig5_window_site_derivation_speedup {
        println!("bench_report: fig5 site derivation, window vs full trace: {s:.2}x faster");
    }
    if let Some(s) = report.fig5_window_traced_events_ratio {
        println!("bench_report: fig5 traced events, full vs window: {s:.1}x fewer recorded");
    }
    if let Some(s) = report.tracing_overhead_ratio_mg_skip_markers {
        println!("bench_report: tracing overhead ratio with skip_markers (MG): {s:.2}x");
    }
    if let (Some(s), Some(r)) = (
        report.fig5_window_site_derivation_speedup_lu,
        report.fig5_window_traced_events_ratio_lu,
    ) {
        println!(
            "bench_report: fig5 window path on promoted LU (lu_rhs): {s:.2}x faster site \
             derivation, {r:.1}x fewer recorded events"
        );
    }
    if let Some(s) = report.analysis_fused_vs_seed_speedup_mg {
        println!("bench_report: fused per-injection analysis vs seed stages (MG): {s:.1}x");
    }
    if let Some(s) = report.campaign_streaming_injection_speedup_mg {
        println!("bench_report: analyzed campaign injection, streaming vs materialized: {s:.2}x");
    }
    if let Some(s) = report.campaign_streaming_resident_events_ratio_mg {
        println!(
            "bench_report: streaming campaign resident state: {s:.0}x fewer entries than a \
             materialized faulty trace"
        );
    }
    for (label, speedup) in [
        ("LU lu_blts", report.campaign_checkpoint_speedup_lu),
        ("MG mg_a", report.campaign_checkpoint_speedup_mg),
        (
            "LU last iteration",
            report.campaign_checkpoint_speedup_lu_last_iteration,
        ),
    ] {
        if let Some(s) = speedup {
            println!("bench_report: fork-point campaign vs cold ({label}): {s:.2}x");
        }
    }
    if let (Some(c), Some(r)) = (
        report.campaign_checkpoint_capture_ns_lu_last_iteration,
        report.campaign_checkpoint_restore_ns_lu_last_iteration,
    ) {
        println!(
            "bench_report: checkpoint capture {c} ns once, restore {r} ns per test \
             (LU last iteration)"
        );
    }
    for (label, speedup) in [
        ("MG", report.vm_decode_speedup_mg),
        ("LU", report.vm_decode_speedup_lu),
    ] {
        if let Some(s) = speedup {
            println!("bench_report: decoded dispatch vs legacy interpreter ({label}): {s:.2}x");
        }
    }
    for (label, speedup) in [
        ("MG", report.campaign_batched_masked_speedup_mg),
        ("LU", report.campaign_batched_masked_speedup_lu),
    ] {
        if let Some(s) = speedup {
            println!("bench_report: batched lockstep vs serial, masked case ({label}): {s:.2}x");
        }
    }
    if let Some(r) = report.campaign_catch_unwind_overhead_ratio {
        println!("bench_report: catch_unwind perimeter on a faulty run (IS): {r:.3}x");
    }
    if let Some(r) = report.campaign_report_checksum_write_overhead_ratio {
        println!("bench_report: crash-consistent report write vs plain (IS): {r:.2}x");
    }
    if let Some(r) = report.campaign_spmd_overhead_ratio_mg {
        println!("bench_report: 4-rank SPMD campaign vs serial, same population (MG): {r:.2}x");
    }
    if let Some(r) = report.spmd_containment_rate_mg {
        println!(
            "bench_report: divergent 4-rank MG injections contained in their rank: {:.0}%",
            r * 100.0
        );
    }
}
