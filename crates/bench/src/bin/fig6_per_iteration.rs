//! Reproduce Figure 6: success rate per main-loop iteration.
fn main() {
    let (effort, json) = ftkr_bench::harness_args();
    let series = fliptracker::experiments::fig6(&effort, 10);
    ftkr_bench::emit(series.to_text(), &series, json);
}
