//! Reproduce Table IV (Use Case 2): pattern rates, measured and predicted
//! success rates, prediction error, R² and standardized coefficients.
fn main() {
    let (effort, json) = ftkr_bench::harness_args();
    let table = fliptracker::use_cases::table4(&effort);
    ftkr_bench::emit(table.to_text(), &table, json);
}
