//! Reproduce Table II: the error magnitude of a corrupted MG element
//! shrinking across the four mg3P invocations (Repeated Additions).
fn main() {
    let (_effort, json) = ftkr_bench::harness_args();
    // Flipping bit 40 of an exactly-zero double is absorbed outright (the
    // corrupted value rounds away against O(1) data), so the default uses an
    // exponent bit, which reproduces the paper's "infinite error at itr1,
    // shrinking afterwards" shape.  Pass a different element/bit as needed.
    let table = fliptracker::experiments::table2(10, 62);
    ftkr_bench::emit(table.to_text(), &table, json);
}
