//! Reproduce Figure 7: the number of alive corrupted locations over dynamic
//! instructions after a late-iteration injection in LULESH.
fn main() {
    let (_effort, json) = ftkr_bench::harness_args();
    let fig = fliptracker::experiments::fig7();
    ftkr_bench::emit(fig.to_text(), &fig, json);
}
