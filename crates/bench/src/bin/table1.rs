//! Reproduce Table I: resilience computation patterns per code region.
fn main() {
    let (effort, json) = ftkr_bench::harness_args();
    let table = fliptracker::experiments::table1(&effort);
    ftkr_bench::emit(table.to_text(), &table, json);
}
