//! Reproduce Table III (Use Case 1): resilience and runtime of CG before and
//! after applying the DCL/overwriting and truncation patterns.
fn main() {
    let (effort, json) = ftkr_bench::harness_args();
    let table = fliptracker::use_cases::table3(&effort);
    ftkr_bench::emit(table.to_text(), &table, json);
}
