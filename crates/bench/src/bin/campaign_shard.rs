//! Cross-process campaign execution from serialized [`CampaignPlan`]s.
//!
//! This binary is the distribution story of the campaign machinery: a
//! coordinator writes a shard manifest of JSON plans, any number of worker
//! processes (possibly on other machines) execute one plan each, and the
//! coordinator merges the resulting reports — bit-identically to running the
//! whole campaign in one process.
//!
//! ```sh
//! campaign_shard plan    <app> <target> <class> <n_tests> <seed> <k> <dir>
//! campaign_shard run     <plan.json> [report.json]
//! campaign_shard merge   <report.json> <report.json>...
//! campaign_shard resume  <manifest-dir>
//! campaign_shard chaos   <app> <target> <class> <n_tests> <seed> <k> <dir> <chaos-seed>
//! campaign_shard stats   <app> <region> [out.jsonl]
//! campaign_shard speedup <app> <region:NAME|iter:N|iter:last> [out.jsonl]
//! campaign_shard overhead <app> [out.jsonl]
//! campaign_shard serve   <addr> [workers] [budget-mb] [port-file]
//! campaign_shard submit  <addr> <plan.json> [k]
//! campaign_shard watch   <addr> <job>
//! campaign_shard stats   <addr>
//! campaign_shard shutdown <addr>
//! campaign_shard serve-bench <app> [out.jsonl]
//! campaign_shard spmd-plan <app> <target|messages> <class> <n_tests> <seed> <ranks> <sweep|rank:N> <k> <dir>
//! campaign_shard spmd-run <plan.json> [report.json]
//! campaign_shard spmd-merge <report.json> <report.json>...
//! campaign_shard serial-vs-parallel <app> <n_tests> <seed> [out.jsonl]
//! ```
//!
//! * `plan` resolves the target's dynamic window in a session and writes
//!   `<dir>/plan.json` (the monolithic campaign) plus `<dir>/plan_shard_<i>.json`
//!   (the `k`-way shard manifest).  Targets: `whole`, `region:<name>`,
//!   `iter:<0-based index>`.  Classes: `internal`, `input`.
//! * `run` executes one plan in a fresh session (a plan that carries its
//!   window derives its sites from a region-scoped trace — no full trace is
//!   recorded) and writes the `CampaignReport` JSON.
//! * `merge` folds shard reports into one and prints the merged JSON.
//! * `resume` scans a manifest directory, re-executes exactly the shards
//!   whose `report_<i>.json` is missing or corrupt (a died worker, a
//!   truncated file), and prints the merged report — bit-identical to the
//!   monolithic campaign regardless of how many resume passes it took.
//! * `stats` records the traced footprint (event/operand counts) of
//!   Figure-5-style site derivation under `TraceScope::Window` vs. a full
//!   reference trace, plus the streaming campaign path's resident-event
//!   footprint, as JSON lines that `bench_report` folds into
//!   `BENCH_fliptracker.json`.
//! * `chaos` is the self-directed fault-injection drill: it writes a shard
//!   manifest, executes every shard under a seeded [`FailPlan`] (restore
//!   failures, verifier panics, mid-write crashes, on-disk corruption,
//!   transient I/O), then resumes the battered manifest and asserts the
//!   merged report is **byte-identical** to an undisturbed run.
//! * `speedup` measures the fork-point checkpoint executor against the
//!   cold-start executor on one campaign target (wall time of
//!   `Session::run_plan` vs `Session::run_plan_cold`, plus one-time capture
//!   cost, per-run restore cost, and snapshot footprint counters), in the
//!   same JSONL shape.  `iter:last` resolves to the final main-loop
//!   iteration — the latest window the registry offers, i.e. the longest
//!   clean prefix the fork path can skip.
//! * `overhead` times the robustness machinery itself: one faulty-run
//!   execution inside vs outside the `catch_unwind` perimeter, and a report
//!   write through the atomic temp-file + checksum protocol vs a plain
//!   `fs::write` — the numbers `bench_report` folds into the
//!   `campaign_*_overhead_ratio` fields to show the hot path is unaffected.
//! * `serve` runs the resident campaign daemon (`ftkr_serve`): plans arrive
//!   over a framed socket protocol, execute as shard jobs on a worker pool
//!   through a shared hot-session cache, and stream per-shard deltas to
//!   watchers.  `[port-file]` receives the bound address — how `ci.sh`
//!   discovers an ephemeral port.
//! * `submit` sends a plan file to a daemon and prints the job id; `watch`
//!   streams the job's deltas to stderr and prints the final merged
//!   `AnalyzedCampaignReport` JSON to stdout — byte-identical to
//!   `run --analyzed` of the same plan.  `stats <addr>` (an address has a
//!   `:`; an application name never does) prints the daemon's counters;
//!   `shutdown` drains it.
//! * `serve-bench` measures the cache's reason to exist: an in-process
//!   daemon serves the same plan twice, and the cold (first, cache-miss)
//!   and warm (hot-session) submit→final latencies land in the JSONL that
//!   `bench_report` folds into `serve_submit_latency_*` /
//!   `serve_cache_hit_speedup_*`.
//! * `spmd-plan` / `spmd-run` / `spmd-merge` are the multi-rank counterparts
//!   of `plan` / `run` / `merge`: each test runs as an `ranks`-way SPMD job
//!   with the fault in exactly one rank's VM (or, for the `messages` target,
//!   in one message payload), and the merged `SpmdCampaignReport` carries
//!   per-rank tallies plus masked/contained/spread divergence counts —
//!   byte-identical to the monolithic run for any shard split.
//! * `serial-vs-parallel` reproduces the Wu-et-al.-style comparison: the
//!   same application and the same computation-fault population executed at
//!   `nranks = 1` and `nranks = 4` (plus the message-payload population at
//!   both rank counts), printed as a table distinguishing contained from
//!   spread corruption, with timing and containment records for
//!   `bench_report` (`campaign_spmd_overhead_ratio_*`,
//!   `spmd_containment_rate_*`).

use std::process::exit;
use std::time::{Duration, Instant};

use fliptracker::{execute_plan, execute_plan_spmd, Session};
use ftkr_serve::{Client, Server, ServerConfig};
use ftkr_bench::shard::{
    resume_manifest, shard_report_path, write_report, write_report_chaos,
};
use ftkr_inject::{
    BatchContext, BatchScan, CampaignPlan, CampaignReport, CampaignTarget, FailPlan, FaultSite,
    IndexRange, RankTarget, SpmdCampaignReport, TargetClass,
};
use ftkr_vm::{Vm, VmConfig};

fn usage() -> ! {
    eprintln!(
        "usage:\n  campaign_shard plan   <app> <whole|region:NAME|iter:N> <internal|input> \
         <n_tests> <seed> <k> <dir>\n  campaign_shard run    <plan.json> [report.json]\n  \
         campaign_shard merge  <report.json> <report.json>...\n  \
         campaign_shard resume <manifest-dir>\n  \
         campaign_shard chaos  <app> <whole|region:NAME|iter:N> <internal|input> \
         <n_tests> <seed> <k> <dir> <chaos-seed>\n  \
         campaign_shard stats  <app> <region> [out.jsonl]\n  \
         campaign_shard speedup <app> <region:NAME|iter:N|iter:last> [out.jsonl]\n  \
         campaign_shard decode-bench <app> [out.jsonl]\n  \
         campaign_shard batched-bench <app> [out.jsonl]\n  \
         campaign_shard overhead <app> [out.jsonl]\n  \
         campaign_shard serve  <addr> [workers] [budget-mb] [port-file]\n  \
         campaign_shard submit <addr> <plan.json> [k]\n  \
         campaign_shard watch  <addr> <job>\n  \
         campaign_shard stats  <addr>\n  \
         campaign_shard shutdown <addr>\n  \
         campaign_shard serve-bench <app> [out.jsonl]\n  \
         campaign_shard spmd-plan <app> <whole|region:NAME|iter:N|messages> <internal|input> \
         <n_tests> <seed> <ranks> <sweep|rank:N> <k> <dir>\n  \
         campaign_shard spmd-run <plan.json> [report.json]\n  \
         campaign_shard spmd-merge <report.json> <report.json>...\n  \
         campaign_shard serial-vs-parallel <app> <n_tests> <seed> [out.jsonl]\n  \
         (run also accepts --analyzed for the pattern-enriched report and \
         --batched for the lockstep executor)"
    );
    exit(2);
}

fn parse_target(text: &str) -> CampaignTarget {
    if text == "whole" {
        return CampaignTarget::WholeProgram;
    }
    if text == "messages" {
        return CampaignTarget::Messages;
    }
    if let Some(name) = text.strip_prefix("region:") {
        return CampaignTarget::Region {
            name: name.to_string(),
        };
    }
    if let Some(index) = text.strip_prefix("iter:") {
        if let Ok(index) = index.parse() {
            return CampaignTarget::Iteration { index };
        }
    }
    eprintln!("campaign_shard: unknown target {text:?}");
    usage();
}

fn parse_class(text: &str) -> TargetClass {
    match text.to_ascii_lowercase().as_str() {
        "internal" => TargetClass::Internal,
        "input" => TargetClass::Input,
        other => {
            eprintln!("campaign_shard: unknown class {other:?}");
            usage();
        }
    }
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("campaign_shard: cannot read {path}: {e}");
        exit(1);
    })
}

/// Read a report file, accepting both crash-consistent files (checksum
/// footer, written by `run`/`resume`) and bare JSON documents (stdout
/// captures).  A file that *has* a footer must verify: a torn or rotted
/// report is an error here, not silently parsed.
fn read_report(path: &str) -> String {
    let text = read(path);
    if text.contains(ftkr_bench::shard::CHECKSUM_PREFIX) {
        match ftkr_bench::shard::verify_checksum(&text) {
            Some(payload) => payload.to_string(),
            None => {
                eprintln!("campaign_shard: {path}: checksum footer does not match — torn write?");
                exit(1);
            }
        }
    } else {
        text
    }
}

/// Write a JSON document with a trailing newline (so files written by `run`
/// byte-match documents printed by `merge`).
fn write(path: &str, text: &str) {
    std::fs::write(path, format!("{text}\n")).unwrap_or_else(|e| {
        eprintln!("campaign_shard: cannot write {path}: {e}");
        exit(1);
    });
}

fn cmd_plan(args: &[String]) {
    let [app, target, class, n_tests, seed, k, dir] = args else {
        usage();
    };
    let target = parse_target(target);
    let class = parse_class(class);
    let n_tests: u64 = n_tests.parse().unwrap_or_else(|_| usage());
    let seed: u64 = seed.parse().unwrap_or_else(|_| usage());
    let k: usize = k.parse().unwrap_or_else(|_| usage());

    let session = Session::by_name(app).unwrap_or_else(|| {
        eprintln!("campaign_shard: unknown application {app:?}");
        exit(1);
    });
    let plan = session
        .plan(target, class, n_tests)
        .unwrap_or_else(|e| {
            eprintln!("campaign_shard: {e}");
            exit(1);
        })
        .with_seed(seed);

    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!("campaign_shard: cannot create {dir}: {e}");
        exit(1);
    });
    let mono_path = format!("{dir}/plan.json");
    write(&mono_path, &plan.to_json());
    println!("{mono_path}");
    for (i, shard) in plan.shards(k).iter().enumerate() {
        let path = format!("{dir}/plan_shard_{i}.json");
        write(&path, &shard.to_json());
        println!("{path}");
    }
}

fn cmd_run(args: &[String]) {
    // `--analyzed` switches to the pattern-enriched report — the flavor the
    // campaign server streams, so `watch` output can be diffed against an
    // offline `run --analyzed` of the same plan.  `--batched` forces the
    // batched lockstep executor regardless of the plan's own flag — the CI
    // hook that diffs a batched run against the same plan run serially.
    let mut analyzed = false;
    let mut batched = false;
    let mut args = args;
    while let Some((flag, rest)) = args.split_first() {
        match flag.as_str() {
            "--analyzed" => analyzed = true,
            "--batched" => batched = true,
            _ => break,
        }
        args = rest;
    }
    if analyzed && batched {
        eprintln!("campaign_shard: --analyzed and --batched are mutually exclusive");
        exit(2);
    }
    let (plan_path, out) = match args {
        [plan] => (plan, None),
        [plan, out] => (plan, Some(out)),
        _ => usage(),
    };
    let mut plan = CampaignPlan::from_json(&read(plan_path)).unwrap_or_else(|e| {
        eprintln!("campaign_shard: {plan_path} is not a plan: {e}");
        exit(1);
    });
    if batched {
        plan = plan.with_batched();
    }
    let json = if analyzed {
        Session::by_name(&plan.app)
            .unwrap_or_else(|| {
                eprintln!("campaign_shard: unknown application {:?}", plan.app);
                exit(1);
            })
            .run_plan_analyzed(&plan)
            .unwrap_or_else(|e| {
                eprintln!("campaign_shard: {e}");
                exit(1);
            })
            .to_json()
    } else {
        execute_plan(&plan)
            .unwrap_or_else(|e| {
                eprintln!("campaign_shard: {e}");
                exit(1);
            })
            .to_json()
    };
    match out {
        // File output goes through the crash-consistent protocol (atomic
        // rename + checksum footer); stdout stays bare JSON.
        Some(path) => write_report(std::path::Path::new(path), &json).unwrap_or_else(|e| {
            eprintln!("campaign_shard: cannot write {path}: {e}");
            exit(1);
        }),
        None => println!("{json}"),
    }
}

fn cmd_merge(args: &[String]) {
    if args.is_empty() {
        usage();
    }
    let reports: Vec<(String, CampaignReport)> = args
        .iter()
        .map(|path| {
            let report = CampaignReport::from_json(&read_report(path)).unwrap_or_else(|e| {
                eprintln!("campaign_shard: {path} is not a report: {e}");
                exit(1);
            });
            (path.clone(), report)
        })
        .collect();
    let (first_path, first) = &reports[0];
    for (path, report) in &reports[1..] {
        if !first.same_campaign(report) {
            eprintln!(
                "campaign_shard: {path} (population {}, seed {}) is not a shard of the \
                 same campaign as {first_path} (population {}, seed {})",
                report.population, report.seed, first.population, first.seed
            );
            exit(1);
        }
    }
    let merged = reports
        .into_iter()
        .map(|(_, report)| report)
        .reduce(|a, b| a.merge(&b))
        .expect("at least one report");
    println!("{}", merged.to_json());
}

fn cmd_resume(args: &[String]) {
    let [dir] = args else {
        usage();
    };
    match resume_manifest(std::path::Path::new(dir)) {
        Ok(summary) => {
            eprintln!(
                "campaign_shard: {} shard(s) intact, re-executed {:?}",
                summary.intact.len(),
                summary.executed
            );
            println!("{}", summary.merged.to_json());
        }
        Err(e) => {
            eprintln!("campaign_shard: {e}");
            exit(1);
        }
    }
}

/// The chaos drill: run a sharded campaign with every harness fail point
/// armed, batter the manifest, resume it, and demand byte-identical
/// convergence with an undisturbed run.
fn cmd_chaos(args: &[String]) {
    let [app, target, class, n_tests, seed, k, dir, chaos_seed] = args else {
        usage();
    };
    let target = parse_target(target);
    let class = parse_class(class);
    let n_tests: u64 = n_tests.parse().unwrap_or_else(|_| usage());
    let seed: u64 = seed.parse().unwrap_or_else(|_| usage());
    let k: usize = k.parse().unwrap_or_else(|_| usage());
    let chaos_seed: u64 = chaos_seed.parse().unwrap_or_else(|_| usage());

    let session = Session::by_name(app).unwrap_or_else(|| {
        eprintln!("campaign_shard: unknown application {app:?}");
        exit(1);
    });
    let plan = session
        .plan(target, class, n_tests)
        .unwrap_or_else(|e| {
            eprintln!("campaign_shard: {e}");
            exit(1);
        })
        .with_seed(seed);

    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!("campaign_shard: cannot create {dir}: {e}");
        exit(1);
    });
    let dir_path = std::path::Path::new(dir);
    write(&format!("{dir}/plan.json"), &plan.to_json());
    let shards = plan.shards(k);
    for (i, shard) in shards.iter().enumerate() {
        write(&format!("{dir}/plan_shard_{i}.json"), &shard.to_json());
    }

    // The undisturbed truth the battered manifest must converge to.
    let reference = session.run_plan(&plan).unwrap_or_else(|e| {
        eprintln!("campaign_shard: {e}");
        exit(1);
    });

    // Every fail site armed at ~20 %: restores fail, verifiers panic,
    // writes crash mid-flight, reports rot on disk, I/O flakes.
    let chaos = FailPlan::uniform(chaos_seed, 200);

    // Dozens of injected panics are *expected* here; silence their default
    // backtraces so the drill's progress stays readable.  Anything not
    // carrying the chaos tag is a real bug and still prints in full.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with(FailPlan::PANIC_TAG));
        if !injected {
            default_hook(info);
        }
    }));
    let mut tainted = 0usize;
    let mut dead_writes = 0usize;
    for (i, shard) in shards.iter().enumerate() {
        let report = session.run_plan_chaos(shard, chaos).unwrap_or_else(|e| {
            eprintln!("campaign_shard: {e}");
            exit(1);
        });
        if report.is_tainted() {
            tainted += 1;
        }
        if write_report_chaos(
            &shard_report_path(dir_path, i),
            &report.to_json(),
            chaos,
            i as u64,
        )
        .is_err()
        {
            // The "worker" died mid-write; whatever the crash left (an old
            // report, a stray .tmp, nothing) stays for resume to deal with.
            dead_writes += 1;
        }
    }
    eprintln!(
        "campaign_shard: chaos pass over {} shard(s): {tainted} tainted, \
         {dead_writes} died mid-write",
        shards.len()
    );

    let summary = resume_manifest(dir_path).unwrap_or_else(|e| {
        eprintln!("campaign_shard: resume after chaos failed: {e}");
        exit(1);
    });
    eprintln!(
        "campaign_shard: resume kept {} shard(s), re-executed {:?}",
        summary.intact.len(),
        summary.executed
    );
    if summary.merged.to_json() == reference.to_json() {
        println!(
            "chaos converged: {} tests, report byte-identical to the undisturbed run",
            summary.merged.n_tests
        );
    } else {
        eprintln!(
            "campaign_shard: CHAOS DIVERGED\n-- undisturbed --\n{}\n-- resumed --\n{}",
            reference.to_json(),
            summary.merged.to_json()
        );
        exit(1);
    }
}

fn cmd_stats(args: &[String]) {
    let (app, region, out) = match args {
        [app, region] => (app, region, None),
        [app, region, out] => (app, region, Some(out)),
        _ => usage(),
    };
    let session = Session::by_name(app).unwrap_or_else(|| {
        eprintln!("campaign_shard: unknown application {app:?}");
        exit(1);
    });
    let target = CampaignTarget::Region {
        name: region.clone(),
    };
    let (start, end) = session.target_window(&target).unwrap_or_else(|e| {
        eprintln!("campaign_shard: {e}");
        exit(1);
    });
    // The full reference trace is already materialized by the window
    // resolution above; a shard process would instead record only the
    // region's window.
    let full = session.clean_trace();
    let windowed = Vm::new(VmConfig::tracing_region(start, end))
        .run(&session.app().module)
        .expect("module verifies")
        .trace
        .expect("tracing enabled");

    // The no-materialization campaign path's footprint: a streamed faulty
    // run retains only the interned location table (plus O(1) scratch),
    // while the materialized per-injection analysis holds the full faulty
    // event stream and operand pool.
    let fault = full
        .iter()
        .skip(full.len() / 3)
        .find(|(_, e)| e.write.is_some())
        .map(|(i, _)| ftkr_vm::FaultSpec::in_result(i as u64, 40))
        .expect("trace has value-producing events");
    let faulty = Vm::new(ftkr_vm::VmConfig::tracing_with_fault(fault))
        .run(&session.app().module)
        .expect("module verifies")
        .trace
        .expect("tracing enabled");

    let records = [
        (format!("fig5_trace/full_events/{app}"), full.len() as u64),
        (format!("fig5_trace/full_operands/{app}"), full.num_operands() as u64),
        (format!("fig5_trace/window_events/{app}"), windowed.len() as u64),
        (
            format!("fig5_trace/window_operands/{app}"),
            windowed.num_operands() as u64,
        ),
        (
            format!("campaign_streaming/materialized_trace_events/{app}"),
            faulty.len() as u64,
        ),
        (
            format!("campaign_streaming/materialized_trace_operands/{app}"),
            faulty.num_operands() as u64,
        ),
        (
            format!("campaign_streaming/streaming_resident_locations/{app}"),
            faulty.num_locations() as u64,
        ),
    ];
    // `count`, not `median_ns`: these are footprint counters, and
    // bench_report keeps them out of the timing table.
    let mut lines = String::new();
    for (name, value) in records {
        lines.push_str(&format!("{{\"name\":\"{name}\",\"count\":{value}}}\n"));
    }
    match out {
        Some(path) => {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| {
                    eprintln!("campaign_shard: cannot open {path}: {e}");
                    exit(1);
                });
            f.write_all(lines.as_bytes()).expect("append stats");
        }
        None => print!("{lines}"),
    }
}

/// Median wall time of `f` in nanoseconds over `repeats` timed runs.
fn median_ns(repeats: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..repeats)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn cmd_speedup(args: &[String]) {
    let (app, target_text, out) = match args {
        [app, target] => (app, target, None),
        [app, target, out] => (app, target, Some(out)),
        _ => usage(),
    };
    let session = Session::by_name(app).unwrap_or_else(|| {
        eprintln!("campaign_shard: unknown application {app:?}");
        exit(1);
    });
    // `iter:last` is resolved here (plans carry absolute indices only).
    let (target, label) = if *target_text == "iter:last" {
        let index = session.iterations().len() - 1;
        (CampaignTarget::Iteration { index }, "iter_last".to_string())
    } else {
        let t = parse_target(target_text);
        let label = match &t {
            CampaignTarget::Region { name } => name.clone(),
            CampaignTarget::Iteration { index } => format!("iter_{index}"),
            CampaignTarget::WholeProgram | CampaignTarget::Messages => {
                eprintln!(
                    "campaign_shard: speedup needs a mid-run computation target, \
                     not `whole` or `messages`"
                );
                exit(1);
            }
        };
        (t, label)
    };
    const N_TESTS: u64 = 24;
    const SEED: u64 = 0xBE7C_4A5E;
    let plan = session
        .plan(target, TargetClass::Internal, N_TESTS)
        .unwrap_or_else(|e| {
            eprintln!("campaign_shard: {e}");
            exit(1);
        })
        .with_seed(SEED);

    // Warm every lazy cache both paths share (sites, clean trace, the
    // checkpoint), then verify once more that fork == cold before timing —
    // a speedup number for a divergent executor would be meaningless.
    let cold_report = session.run_plan_cold(&plan).expect("cold plan executes");
    let fork_report = session.run_plan(&plan).expect("forked plan executes");
    assert_eq!(
        fork_report.to_json(),
        cold_report.to_json(),
        "fork-point report diverged from the cold report"
    );

    let repeats = 5;
    let cold_ns = median_ns(repeats, || {
        let _ = session.run_plan_cold(&plan).unwrap();
    });
    let fork_ns = median_ns(repeats, || {
        let _ = session.run_plan(&plan).unwrap();
    });

    // One-time capture cost, per-run restore cost, snapshot footprint.  The
    // restore cost is isolated by resuming with `max_steps` equal to the
    // snapshot's own step: the resumed run hits the step limit before
    // executing a single instruction, so the wall time is restoration alone.
    let module = &session.app().module;
    let probe = Vm::new(VmConfig::default());
    // The executor forks at the earliest sampled site step; recover it from
    // the sites the plan resolves (the same derivation `run_plan` uses).
    let sites = session
        .sites(&plan.target, plan.class)
        .expect("target resolves");
    let fork_at = sites.iter().map(|s| s.at_step).min().unwrap_or(0);
    let mut captured = None;
    let capture_ns = median_ns(repeats, || {
        captured = probe.snapshot_at(module, fork_at).unwrap();
    });
    let snap = captured.expect("fork step is mid-run");
    let restore_ns = median_ns(repeats, || {
        let stopper = Vm::new(VmConfig {
            max_steps: snap.step(),
            ..VmConfig::default()
        });
        let _ = stopper.resume_from(module, &snap).unwrap();
    });

    let records = [
        (format!("campaign_checkpoint/cold/{app}@{label}"), cold_ns, "median_ns"),
        (format!("campaign_checkpoint/fork/{app}@{label}"), fork_ns, "median_ns"),
        (format!("campaign_checkpoint/capture/{app}@{label}"), capture_ns, "median_ns"),
        (format!("campaign_checkpoint/restore/{app}@{label}"), restore_ns, "median_ns"),
        (
            format!("campaign_checkpoint/snapshot_cells/{app}@{label}"),
            snap.memory_cells(),
            "count",
        ),
        (
            format!("campaign_checkpoint/snapshot_locations/{app}@{label}"),
            snap.num_locations() as u64,
            "count",
        ),
        (format!("campaign_checkpoint/fork_step/{app}@{label}"), snap.step(), "count"),
    ];
    let mut lines = String::new();
    for (name, value, key) in records {
        lines.push_str(&format!("{{\"name\":\"{name}\",\"{key}\":{value}}}\n"));
    }
    eprintln!(
        "campaign_shard: {app}@{label}: cold {cold_ns} ns, fork {fork_ns} ns \
         ({:.2}x), capture {capture_ns} ns, restore {restore_ns} ns, fork step {}",
        cold_ns as f64 / fork_ns.max(1) as f64,
        snap.step()
    );
    match out {
        Some(path) => {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| {
                    eprintln!("campaign_shard: cannot open {path}: {e}");
                    exit(1);
                });
            f.write_all(lines.as_bytes()).expect("append speedup records");
        }
        None => print!("{lines}"),
    }
}

/// Time the legacy per-`Op` interpreter against the pre-decoded dispatch
/// tables on the fault-free run, holding the two paths bit-identical before
/// any number is recorded.
fn cmd_decode_bench(args: &[String]) {
    let (app, out) = match args {
        [app] => (app, None),
        [app, out] => (app, Some(out)),
        _ => usage(),
    };
    let session = Session::by_name(app).unwrap_or_else(|| {
        eprintln!("campaign_shard: unknown application {app:?}");
        exit(1);
    });
    let module = &session.app().module;
    let decoded = session.decoded_module();

    // A speedup number for a divergent interpreter would be meaningless:
    // hold outcome, steps, outputs and memory equal first.
    let vm = Vm::new(VmConfig::default());
    let legacy = vm.run(module).expect("module verifies");
    let fast = vm.run_decoded(module, decoded).expect("module verifies");
    assert_eq!(legacy.outcome, fast.outcome, "decoded outcome diverged");
    assert_eq!(legacy.steps, fast.steps, "decoded step count diverged");
    assert_eq!(legacy.outputs, fast.outputs, "decoded outputs diverged");

    let repeats = 5;
    let legacy_ns = median_ns(repeats, || {
        let _ = vm.run(module).unwrap();
    });
    let decoded_ns = median_ns(repeats, || {
        let _ = vm.run_decoded(module, decoded).unwrap();
    });

    let mut lines = String::new();
    for (name, value) in [
        (format!("vm_decode/legacy/{app}"), legacy_ns),
        (format!("vm_decode/decoded/{app}"), decoded_ns),
    ] {
        lines.push_str(&format!("{{\"name\":\"{name}\",\"median_ns\":{value}}}\n"));
    }
    eprintln!(
        "campaign_shard: {app}: legacy {legacy_ns} ns vs decoded {decoded_ns} ns \
         ({:.2}x) over {} dynamic steps",
        legacy_ns as f64 / decoded_ns.max(1) as f64,
        legacy.steps
    );
    append_records(out, &lines);
}

/// Time a serial campaign against the batched lockstep executor on the
/// scenario the lockstep sweep exists for — the *masked case*: memory-cell
/// faults striking the application's global state in the dead window between
/// the last main-loop write and verification.  Nearly every such lane masks
/// (the corrupted cell is never read again inside the run), so the serial
/// executor pays a whole execution per test while the batched executor
/// classifies the lane from one sweep of the clean trace plus a memory
/// clone.  The two reports are held bit-identical before any number is
/// recorded.
fn cmd_batched_bench(args: &[String]) {
    let (app, out) = match args {
        [app] => (app, None),
        [app, out] => (app, Some(out)),
        _ => usage(),
    };
    let session = Session::by_name(app).unwrap_or_else(|| {
        eprintln!("campaign_shard: unknown application {app:?}");
        exit(1);
    });
    const N_TESTS: u64 = 48;
    const SEED: u64 = 0xBA7C_4ED0;
    let clean = session.clean_run();
    // The dead-window fault population: every global cell, struck one
    // dynamic step before the run completes.  Whatever the program still
    // reads past that point diverges and peels off; everything else is the
    // masked case the batched executor accelerates.
    let sites: Vec<FaultSite> = (0..clean.memory.globals_len())
        .map(|addr| FaultSite {
            at_step: clean.steps - 1,
            mem_addr: Some(addr),
            class: TargetClass::Input,
        })
        .collect();
    let campaign = session.campaign(SEED);
    let ctx = BatchContext::new(clean);
    let range = IndexRange::full(N_TESTS);

    // Warm the shared caches and hold the two executors bit-identical
    // before any number is recorded.
    let serial_report = campaign.run_range(&sites, range);
    let batched_report = campaign.run_range_batched(&sites, range, &ctx, None);
    assert_eq!(
        batched_report.to_json(),
        serial_report.to_json(),
        "batched report diverged from the serial report"
    );
    let scan = BatchScan::sweep(SEED, &sites, range, &ctx);

    let repeats = 5;
    let serial_ns = median_ns(repeats, || {
        let _ = campaign.run_range(&sites, range);
    });
    let batched_ns = median_ns(repeats, || {
        let _ = campaign.run_range_batched(&sites, range, &ctx, None);
    });

    let mut lines = String::new();
    for (name, value) in [
        (format!("campaign_batched/serial/{app}@masked"), serial_ns),
        (format!("campaign_batched/batched/{app}@masked"), batched_ns),
    ] {
        lines.push_str(&format!("{{\"name\":\"{name}\",\"median_ns\":{value}}}\n"));
    }
    eprintln!(
        "campaign_shard: {app} dead-window campaign ({} masked / {} diverged of {N_TESTS}): \
         serial {serial_ns} ns vs batched {batched_ns} ns ({:.2}x)",
        scan.masked(),
        scan.diverged(),
        serial_ns as f64 / batched_ns.max(1) as f64
    );
    append_records(out, &lines);
}

/// Time the robustness machinery against its unguarded counterparts: the
/// `catch_unwind` perimeter around one faulty-run execution, and the atomic
/// temp-file + checksum report write against a plain `fs::write`.
fn cmd_overhead(args: &[String]) {
    let (app, out) = match args {
        [app] => (app, None),
        [app, out] => (app, Some(out)),
        _ => usage(),
    };
    let session = Session::by_name(app).unwrap_or_else(|| {
        eprintln!("campaign_shard: unknown application {app:?}");
        exit(1);
    });
    let module = &session.app().module;

    let repeats = 7;
    let raw_ns = median_ns(repeats, || {
        let _ = Vm::new(VmConfig::default())
            .run(module)
            .expect("module verifies");
    });
    let caught_ns = median_ns(repeats, || {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Vm::new(VmConfig::default())
                .run(module)
                .expect("module verifies")
        }))
        .expect("clean run does not panic");
    });

    // A representative report payload for the write comparison.
    let plan = session
        .plan(CampaignTarget::WholeProgram, TargetClass::Internal, 8)
        .unwrap_or_else(|e| {
            eprintln!("campaign_shard: {e}");
            exit(1);
        });
    let payload = session
        .run_plan(&plan)
        .unwrap_or_else(|e| {
            eprintln!("campaign_shard: {e}");
            exit(1);
        })
        .to_json();
    let dir = std::env::temp_dir().join("ftkr_overhead");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let plain_path = dir.join("plain.json");
    let atomic_path = dir.join("atomic.json");
    let write_repeats = 41;
    let plain_ns = median_ns(write_repeats, || {
        std::fs::write(&plain_path, payload.as_bytes()).expect("plain write");
    });
    let atomic_ns = median_ns(write_repeats, || {
        write_report(&atomic_path, &payload).expect("atomic write");
    });
    let _ = std::fs::remove_dir_all(&dir);

    let records = [
        (format!("campaign_robustness/vm_run_raw/{app}"), raw_ns),
        (format!("campaign_robustness/vm_run_caught/{app}"), caught_ns),
        (format!("campaign_robustness/report_write_plain/{app}"), plain_ns),
        (format!("campaign_robustness/report_write_atomic/{app}"), atomic_ns),
    ];
    let mut lines = String::new();
    for (name, value) in records {
        lines.push_str(&format!("{{\"name\":\"{name}\",\"median_ns\":{value}}}\n"));
    }
    eprintln!(
        "campaign_shard: {app}: run {raw_ns} ns raw vs {caught_ns} ns caught ({:.3}x), \
         report write {plain_ns} ns plain vs {atomic_ns} ns atomic ({:.2}x)",
        caught_ns as f64 / raw_ns.max(1) as f64,
        atomic_ns as f64 / plain_ns.max(1) as f64
    );
    match out {
        Some(path) => {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| {
                    eprintln!("campaign_shard: cannot open {path}: {e}");
                    exit(1);
                });
            f.write_all(lines.as_bytes()).expect("append overhead records");
        }
        None => print!("{lines}"),
    }
}

/// Exit with the client-side rendering of a serve failure.
fn serve_fail(context: &str, e: ftkr_serve::ServeError) -> ! {
    eprintln!("campaign_shard: {context}: {e}");
    exit(1);
}

fn cmd_serve(args: &[String]) {
    let (addr, rest) = match args.split_first() {
        Some((addr, rest)) if rest.len() <= 3 => (addr, rest),
        _ => usage(),
    };
    let mut config = ServerConfig::default();
    if let Some(workers) = rest.first() {
        config.workers = workers.parse().unwrap_or_else(|_| usage());
    }
    if let Some(budget_mb) = rest.get(1) {
        let mb: u64 = budget_mb.parse().unwrap_or_else(|_| usage());
        config.cache_budget = mb << 20;
    }
    let server = Server::bind(addr, config).unwrap_or_else(|e| {
        eprintln!("campaign_shard: cannot bind {addr}: {e}");
        exit(1);
    });
    let bound = server.local_addr();
    // The port file is how scripts discover an ephemeral (`:0`) port.
    if let Some(port_file) = rest.get(2) {
        std::fs::write(port_file, bound.to_string()).unwrap_or_else(|e| {
            eprintln!("campaign_shard: cannot write {port_file}: {e}");
            exit(1);
        });
    }
    eprintln!("campaign_shard: serving campaigns on {bound}");
    let stats = server.run();
    eprintln!(
        "campaign_shard: drained: {} job(s) over {} shard(s) ({} lost, {} worker panic(s)), \
         cache {} hit(s) / {} miss(es)",
        stats.jobs_completed,
        stats.shards_executed + stats.shards_lost,
        stats.shards_lost,
        stats.worker_panics,
        stats.cache.hits,
        stats.cache.misses
    );
}

fn cmd_submit(args: &[String]) {
    let (addr, plan_path, k) = match args {
        [addr, plan] => (addr, plan, 0),
        [addr, plan, k] => (addr, plan, k.parse().unwrap_or_else(|_| usage())),
        _ => usage(),
    };
    let plan = CampaignPlan::from_json(&read(plan_path)).unwrap_or_else(|e| {
        eprintln!("campaign_shard: {plan_path} is not a plan: {e}");
        exit(1);
    });
    // Default shard count: one job per worker the default config would run.
    let k = if k == 0 { ServerConfig::default().workers as u64 } else { k };
    let mut client =
        Client::connect(addr.as_str()).unwrap_or_else(|e| serve_fail("cannot connect", e));
    let job = client
        .submit(&plan, k, FailPlan::none())
        .unwrap_or_else(|e| serve_fail("submit refused", e));
    println!("{job}");
}

fn cmd_watch(args: &[String]) {
    let [addr, job] = args else {
        usage();
    };
    let job: u64 = job.parse().unwrap_or_else(|_| usage());
    let mut client =
        Client::connect(addr.as_str()).unwrap_or_else(|e| serve_fail("cannot connect", e));
    let report = client
        .watch(job, |shard, done, total, _| {
            eprintln!("campaign_shard: job {job}: shard {shard} done ({done}/{total})");
        })
        .unwrap_or_else(|e| serve_fail("watch failed", e));
    println!("{report}");
}

fn cmd_server_stats(args: &[String]) {
    let [addr] = args else {
        usage();
    };
    let mut client =
        Client::connect(addr.as_str()).unwrap_or_else(|e| serve_fail("cannot connect", e));
    let stats = client.stats().unwrap_or_else(|e| serve_fail("stats refused", e));
    println!(
        "{}",
        serde_json::to_string_pretty(&stats).expect("stats serialize")
    );
}

fn cmd_shutdown(args: &[String]) {
    let [addr] = args else {
        usage();
    };
    let mut client =
        Client::connect(addr.as_str()).unwrap_or_else(|e| serve_fail("cannot connect", e));
    client
        .shutdown()
        .unwrap_or_else(|e| serve_fail("shutdown refused", e));
    eprintln!("campaign_shard: {addr} acknowledged shutdown and is draining");
}

/// Measure the session cache's payoff: submit→final latency of the same
/// plan against a cold daemon and against its now-hot session.
fn cmd_serve_bench(args: &[String]) {
    let (app, out) = match args {
        [app] => (app, None),
        [app, out] => (app, Some(out)),
        _ => usage(),
    };
    let session = Session::by_name(app).unwrap_or_else(|| {
        eprintln!("campaign_shard: unknown application {app:?}");
        exit(1);
    });
    // Few tests on purpose: the cold/warm gap is the *fixed* session
    // warm-up (clean run, sites, checkpoint), and a long injection tail
    // would drown the thing being measured.
    let region = session.app().regions[0].clone();
    let plan = session
        .plan(
            CampaignTarget::Region { name: region },
            TargetClass::Internal,
            4,
        )
        .unwrap_or_else(|e| {
            eprintln!("campaign_shard: {e}");
            exit(1);
        })
        .with_seed(0xC0DE);

    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            cache_budget: u64::MAX,
            idle_timeout: Duration::from_secs(30),
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("campaign_shard: cannot bind an ephemeral port: {e}");
        exit(1);
    });
    let bound = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());

    let mut client =
        Client::connect(bound.as_str()).unwrap_or_else(|e| serve_fail("cannot connect", e));
    let round_trip = |client: &mut Client| -> u64 {
        let t0 = Instant::now();
        let job = client
            .submit(&plan, 2, FailPlan::none())
            .unwrap_or_else(|e| serve_fail("submit refused", e));
        let _ = client
            .watch(job, |_, _, _, _| {})
            .unwrap_or_else(|e| serve_fail("watch failed", e));
        t0.elapsed().as_nanos() as u64
    };
    // The cold number is inherently one-shot — the first submission pays
    // the clean run, site derivation, and checkpoint capture exactly once.
    let cold_ns = round_trip(&mut client);
    let mut warm_samples: Vec<u64> = (0..5).map(|_| round_trip(&mut client)).collect();
    warm_samples.sort_unstable();
    let warm_ns = warm_samples[warm_samples.len() / 2];
    client
        .shutdown()
        .unwrap_or_else(|e| serve_fail("shutdown refused", e));
    daemon.join().expect("daemon thread");

    let mut lines = String::new();
    for (name, value) in [
        (format!("campaign_serve/submit_cold/{app}"), cold_ns),
        (format!("campaign_serve/submit_warm/{app}"), warm_ns),
    ] {
        lines.push_str(&format!("{{\"name\":\"{name}\",\"median_ns\":{value}}}\n"));
    }
    eprintln!(
        "campaign_shard: {app}: submit→final {cold_ns} ns cold vs {warm_ns} ns warm \
         ({:.2}x cache-hit speedup)",
        cold_ns as f64 / warm_ns.max(1) as f64
    );
    match out {
        Some(path) => {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| {
                    eprintln!("campaign_shard: cannot open {path}: {e}");
                    exit(1);
                });
            f.write_all(lines.as_bytes()).expect("append serve records");
        }
        None => print!("{lines}"),
    }
}

/// Append JSONL records to `out`, or print them to stdout when no file was
/// given (the shared tail of the bench-record commands).
fn append_records(out: Option<&String>, lines: &str) {
    match out {
        Some(path) => {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| {
                    eprintln!("campaign_shard: cannot open {path}: {e}");
                    exit(1);
                });
            f.write_all(lines.as_bytes()).expect("append records");
        }
        None => print!("{lines}"),
    }
}

fn parse_rank_target(text: &str) -> RankTarget {
    if text == "sweep" {
        return RankTarget::Sweep;
    }
    if let Some(rank) = text.strip_prefix("rank:") {
        if let Ok(rank) = rank.parse() {
            return RankTarget::Rank(rank);
        }
    }
    eprintln!("campaign_shard: unknown rank target {text:?} (sweep or rank:N)");
    usage();
}

fn cmd_spmd_plan(args: &[String]) {
    let [app, target, class, n_tests, seed, ranks, rank_target, k, dir] = args else {
        usage();
    };
    let target = parse_target(target);
    let class = parse_class(class);
    let n_tests: u64 = n_tests.parse().unwrap_or_else(|_| usage());
    let seed: u64 = seed.parse().unwrap_or_else(|_| usage());
    let ranks: u32 = ranks.parse().unwrap_or_else(|_| usage());
    let rank_target = parse_rank_target(rank_target);
    let k: usize = k.parse().unwrap_or_else(|_| usage());

    let session = Session::by_name(app).unwrap_or_else(|| {
        eprintln!("campaign_shard: unknown application {app:?}");
        exit(1);
    });
    let plan = session
        .plan_spmd(target, class, n_tests, ranks, rank_target)
        .unwrap_or_else(|e| {
            eprintln!("campaign_shard: {e}");
            exit(1);
        })
        .with_seed(seed);

    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!("campaign_shard: cannot create {dir}: {e}");
        exit(1);
    });
    let mono_path = format!("{dir}/plan.json");
    write(&mono_path, &plan.to_json());
    println!("{mono_path}");
    for (i, shard) in plan.shards(k).iter().enumerate() {
        let path = format!("{dir}/plan_shard_{i}.json");
        write(&path, &shard.to_json());
        println!("{path}");
    }
}

fn cmd_spmd_run(args: &[String]) {
    let (plan_path, out) = match args {
        [plan] => (plan, None),
        [plan, out] => (plan, Some(out)),
        _ => usage(),
    };
    let plan = CampaignPlan::from_json(&read(plan_path)).unwrap_or_else(|e| {
        eprintln!("campaign_shard: {plan_path} is not a plan: {e}");
        exit(1);
    });
    let json = execute_plan_spmd(&plan)
        .unwrap_or_else(|e| {
            eprintln!("campaign_shard: {e}");
            exit(1);
        })
        .to_json();
    match out {
        Some(path) => write_report(std::path::Path::new(path), &json).unwrap_or_else(|e| {
            eprintln!("campaign_shard: cannot write {path}: {e}");
            exit(1);
        }),
        None => println!("{json}"),
    }
}

fn cmd_spmd_merge(args: &[String]) {
    if args.is_empty() {
        usage();
    }
    let reports: Vec<(String, SpmdCampaignReport)> = args
        .iter()
        .map(|path| {
            let report = SpmdCampaignReport::from_json(&read_report(path)).unwrap_or_else(|e| {
                eprintln!("campaign_shard: {path} is not an SPMD report: {e}");
                exit(1);
            });
            (path.clone(), report)
        })
        .collect();
    let (first_path, first) = &reports[0];
    for (path, report) in &reports[1..] {
        if report.ranks != first.ranks || !first.report.same_campaign(&report.report) {
            eprintln!(
                "campaign_shard: {path} ({} ranks, population {}, seed {}) is not a shard \
                 of the same campaign as {first_path} ({} ranks, population {}, seed {})",
                report.ranks,
                report.report.population,
                report.report.seed,
                first.ranks,
                first.report.population,
                first.report.seed
            );
            exit(1);
        }
    }
    let merged = reports
        .into_iter()
        .map(|(_, report)| report)
        .reduce(|a, b| a.merge(&b))
        .expect("at least one report");
    println!("{}", merged.to_json());
}

fn cmd_serial_vs_parallel(args: &[String]) {
    let (app, n_tests, seed, out) = match args {
        [app, n, seed] => (app, n, seed, None),
        [app, n, seed, out] => (app, n, seed, Some(out)),
        _ => usage(),
    };
    let n_tests: u64 = n_tests.parse().unwrap_or_else(|_| usage());
    let seed: u64 = seed.parse().unwrap_or_else(|_| usage());
    let session = Session::by_name(app).unwrap_or_else(|| {
        eprintln!("campaign_shard: unknown application {app:?}");
        exit(1);
    });

    let plan_for = |target: CampaignTarget, ranks: u32| {
        session
            .plan_spmd(target, TargetClass::Internal, n_tests, ranks, RankTarget::Sweep)
            .unwrap_or_else(|e| {
                eprintln!("campaign_shard: {e}");
                exit(1);
            })
            .with_seed(seed)
    };
    let comp1 = plan_for(CampaignTarget::WholeProgram, 1);
    let comp4 = plan_for(CampaignTarget::WholeProgram, 4);
    let msg1 = plan_for(CampaignTarget::Messages, 1);
    let msg4 = plan_for(CampaignTarget::Messages, 4);

    let run = |plan: &CampaignPlan| {
        session.run_plan_spmd(plan).unwrap_or_else(|e| {
            eprintln!("campaign_shard: {e}");
            exit(1);
        })
    };
    // Reports first: this also warms the clean SPMD states and the site
    // list, so the timed runs below measure campaign execution only.
    let comp1_report = run(&comp1);
    let comp4_report = run(&comp4);
    let msg1_report = run(&msg1);
    let msg4_report = run(&msg4);

    let serial_ns = median_ns(3, || {
        run(&comp1);
    });
    let spmd_ns = median_ns(3, || {
        run(&comp4);
    });

    // The Wu-et-al.-style comparison table: the computation-fault population
    // (`sites × 64`) is identical in both columns — the serial column is the
    // same campaign executed as one-rank jobs — while the message population
    // is each rank count's own clean census.
    println!(
        "serial-vs-parallel {app}: n_tests {n_tests}, seed {seed}, \
         computation population {} (identical across columns)",
        comp1_report.report.population
    );
    println!("  {:<30} {:>10} {:>10}", "", "nranks=1", "nranks=4");
    let row = |label: &str, a: u64, b: u64| {
        println!("  {label:<30} {a:>10} {b:>10}");
    };
    println!("  computation faults (whole program)");
    let (c1, c4) = (&comp1_report, &comp4_report);
    row("    success", c1.report.counts.success, c4.report.counts.success);
    row("    failed", c1.report.counts.failed, c4.report.counts.failed);
    row("    crashed", c1.report.counts.crashed(), c4.report.counts.crashed());
    row("    masked", c1.divergence.masked, c4.divergence.masked);
    row("    contained", c1.divergence.contained, c4.divergence.contained);
    row("    spread", c1.divergence.spread, c4.divergence.spread);
    println!(
        "  message faults (census {} vs {} messages)",
        msg1_report.report.population / 64,
        msg4_report.report.population / 64
    );
    let (m1, m4) = (&msg1_report, &msg4_report);
    row("    success", m1.report.counts.success, m4.report.counts.success);
    row("    failed", m1.report.counts.failed, m4.report.counts.failed);
    row("    masked", m1.divergence.masked, m4.divergence.masked);
    row("    contained", m1.divergence.contained, m4.divergence.contained);
    row("    spread", m1.divergence.spread, m4.divergence.spread);

    let contained4 = c4.divergence.contained + m4.divergence.contained;
    let divergent4 =
        contained4 + c4.divergence.spread + m4.divergence.spread;
    eprintln!(
        "campaign_shard: {app}: serial {serial_ns} ns vs 4-rank {spmd_ns} ns per campaign \
         ({:.2}x overhead); {contained4}/{divergent4} divergent tests contained",
        spmd_ns as f64 / serial_ns.max(1) as f64
    );

    let mut lines = String::new();
    for (name, value) in [
        (format!("campaign_spmd/serial/{app}"), serial_ns),
        (format!("campaign_spmd/spmd4/{app}"), spmd_ns),
    ] {
        lines.push_str(&format!("{{\"name\":\"{name}\",\"median_ns\":{value}}}\n"));
    }
    for (name, value) in [
        (format!("campaign_spmd/contained4/{app}"), contained4),
        (format!("campaign_spmd/divergent4/{app}"), divergent4),
    ] {
        lines.push_str(&format!("{{\"name\":\"{name}\",\"count\":{value}}}\n"));
    }
    append_records(out, &lines);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "plan" => cmd_plan(rest),
            "run" => cmd_run(rest),
            "merge" => cmd_merge(rest),
            "resume" => cmd_resume(rest),
            "chaos" => cmd_chaos(rest),
            // `stats <addr>` asks a daemon; `stats <app> <region>` records
            // footprint counters.  An address always carries a `:`, an
            // application name never does.
            "stats" if rest.first().is_some_and(|a| a.contains(':')) => cmd_server_stats(rest),
            "stats" => cmd_stats(rest),
            "speedup" => cmd_speedup(rest),
            "decode-bench" => cmd_decode_bench(rest),
            "batched-bench" => cmd_batched_bench(rest),
            "overhead" => cmd_overhead(rest),
            "serve" => cmd_serve(rest),
            "submit" => cmd_submit(rest),
            "watch" => cmd_watch(rest),
            "shutdown" => cmd_shutdown(rest),
            "serve-bench" => cmd_serve_bench(rest),
            "spmd-plan" => cmd_spmd_plan(rest),
            "spmd-run" => cmd_spmd_run(rest),
            "spmd-merge" => cmd_spmd_merge(rest),
            "serial-vs-parallel" => cmd_serial_vs_parallel(rest),
            _ => usage(),
        },
        None => usage(),
    }
}
