//! Cross-process campaign execution from serialized [`CampaignPlan`]s.
//!
//! This binary is the distribution story of the campaign machinery: a
//! coordinator writes a shard manifest of JSON plans, any number of worker
//! processes (possibly on other machines) execute one plan each, and the
//! coordinator merges the resulting reports — bit-identically to running the
//! whole campaign in one process.
//!
//! ```sh
//! campaign_shard plan   <app> <target> <class> <n_tests> <seed> <k> <dir>
//! campaign_shard run    <plan.json> [report.json]
//! campaign_shard merge  <report.json> <report.json>...
//! campaign_shard resume <manifest-dir>
//! campaign_shard stats  <app> <region> [out.jsonl]
//! ```
//!
//! * `plan` resolves the target's dynamic window in a session and writes
//!   `<dir>/plan.json` (the monolithic campaign) plus `<dir>/plan_shard_<i>.json`
//!   (the `k`-way shard manifest).  Targets: `whole`, `region:<name>`,
//!   `iter:<0-based index>`.  Classes: `internal`, `input`.
//! * `run` executes one plan in a fresh session (a plan that carries its
//!   window derives its sites from a region-scoped trace — no full trace is
//!   recorded) and writes the `CampaignReport` JSON.
//! * `merge` folds shard reports into one and prints the merged JSON.
//! * `resume` scans a manifest directory, re-executes exactly the shards
//!   whose `report_<i>.json` is missing or corrupt (a died worker, a
//!   truncated file), and prints the merged report — bit-identical to the
//!   monolithic campaign regardless of how many resume passes it took.
//! * `stats` records the traced footprint (event/operand counts) of
//!   Figure-5-style site derivation under `TraceScope::Window` vs. a full
//!   reference trace, plus the streaming campaign path's resident-event
//!   footprint, as JSON lines that `bench_report` folds into
//!   `BENCH_fliptracker.json`.

use std::process::exit;

use fliptracker::{execute_plan, Session};
use ftkr_inject::{CampaignPlan, CampaignReport, CampaignTarget, TargetClass};
use ftkr_vm::{Vm, VmConfig};

fn usage() -> ! {
    eprintln!(
        "usage:\n  campaign_shard plan   <app> <whole|region:NAME|iter:N> <internal|input> \
         <n_tests> <seed> <k> <dir>\n  campaign_shard run    <plan.json> [report.json]\n  \
         campaign_shard merge  <report.json> <report.json>...\n  \
         campaign_shard resume <manifest-dir>\n  \
         campaign_shard stats  <app> <region> [out.jsonl]"
    );
    exit(2);
}

fn parse_target(text: &str) -> CampaignTarget {
    if text == "whole" {
        return CampaignTarget::WholeProgram;
    }
    if let Some(name) = text.strip_prefix("region:") {
        return CampaignTarget::Region {
            name: name.to_string(),
        };
    }
    if let Some(index) = text.strip_prefix("iter:") {
        if let Ok(index) = index.parse() {
            return CampaignTarget::Iteration { index };
        }
    }
    eprintln!("campaign_shard: unknown target {text:?}");
    usage();
}

fn parse_class(text: &str) -> TargetClass {
    match text.to_ascii_lowercase().as_str() {
        "internal" => TargetClass::Internal,
        "input" => TargetClass::Input,
        other => {
            eprintln!("campaign_shard: unknown class {other:?}");
            usage();
        }
    }
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("campaign_shard: cannot read {path}: {e}");
        exit(1);
    })
}

/// Write a JSON document with a trailing newline (so files written by `run`
/// byte-match documents printed by `merge`).
fn write(path: &str, text: &str) {
    std::fs::write(path, format!("{text}\n")).unwrap_or_else(|e| {
        eprintln!("campaign_shard: cannot write {path}: {e}");
        exit(1);
    });
}

fn cmd_plan(args: &[String]) {
    let [app, target, class, n_tests, seed, k, dir] = args else {
        usage();
    };
    let target = parse_target(target);
    let class = parse_class(class);
    let n_tests: u64 = n_tests.parse().unwrap_or_else(|_| usage());
    let seed: u64 = seed.parse().unwrap_or_else(|_| usage());
    let k: usize = k.parse().unwrap_or_else(|_| usage());

    let session = Session::by_name(app).unwrap_or_else(|| {
        eprintln!("campaign_shard: unknown application {app:?}");
        exit(1);
    });
    let plan = session
        .plan(target, class, n_tests)
        .unwrap_or_else(|e| {
            eprintln!("campaign_shard: {e}");
            exit(1);
        })
        .with_seed(seed);

    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!("campaign_shard: cannot create {dir}: {e}");
        exit(1);
    });
    let mono_path = format!("{dir}/plan.json");
    write(&mono_path, &plan.to_json());
    println!("{mono_path}");
    for (i, shard) in plan.shards(k).iter().enumerate() {
        let path = format!("{dir}/plan_shard_{i}.json");
        write(&path, &shard.to_json());
        println!("{path}");
    }
}

fn cmd_run(args: &[String]) {
    let (plan_path, out) = match args {
        [plan] => (plan, None),
        [plan, out] => (plan, Some(out)),
        _ => usage(),
    };
    let plan = CampaignPlan::from_json(&read(plan_path)).unwrap_or_else(|e| {
        eprintln!("campaign_shard: {plan_path} is not a plan: {e}");
        exit(1);
    });
    let report = execute_plan(&plan).unwrap_or_else(|e| {
        eprintln!("campaign_shard: {e}");
        exit(1);
    });
    let json = report.to_json();
    match out {
        Some(path) => write(path, &json),
        None => println!("{json}"),
    }
}

fn cmd_merge(args: &[String]) {
    if args.is_empty() {
        usage();
    }
    let reports: Vec<(String, CampaignReport)> = args
        .iter()
        .map(|path| {
            let report = CampaignReport::from_json(&read(path)).unwrap_or_else(|e| {
                eprintln!("campaign_shard: {path} is not a report: {e}");
                exit(1);
            });
            (path.clone(), report)
        })
        .collect();
    let (first_path, first) = &reports[0];
    for (path, report) in &reports[1..] {
        if !first.same_campaign(report) {
            eprintln!(
                "campaign_shard: {path} (population {}, seed {}) is not a shard of the \
                 same campaign as {first_path} (population {}, seed {})",
                report.population, report.seed, first.population, first.seed
            );
            exit(1);
        }
    }
    let merged = reports
        .into_iter()
        .map(|(_, report)| report)
        .reduce(|a, b| a.merge(&b))
        .expect("at least one report");
    println!("{}", merged.to_json());
}

fn cmd_resume(args: &[String]) {
    let [dir] = args else {
        usage();
    };
    match ftkr_bench::shard::resume_manifest(std::path::Path::new(dir)) {
        Ok(summary) => {
            eprintln!(
                "campaign_shard: {} shard(s) intact, re-executed {:?}",
                summary.intact.len(),
                summary.executed
            );
            println!("{}", summary.merged.to_json());
        }
        Err(e) => {
            eprintln!("campaign_shard: {e}");
            exit(1);
        }
    }
}

fn cmd_stats(args: &[String]) {
    let (app, region, out) = match args {
        [app, region] => (app, region, None),
        [app, region, out] => (app, region, Some(out)),
        _ => usage(),
    };
    let session = Session::by_name(app).unwrap_or_else(|| {
        eprintln!("campaign_shard: unknown application {app:?}");
        exit(1);
    });
    let target = CampaignTarget::Region {
        name: region.clone(),
    };
    let (start, end) = session.target_window(&target).unwrap_or_else(|e| {
        eprintln!("campaign_shard: {e}");
        exit(1);
    });
    // The full reference trace is already materialized by the window
    // resolution above; a shard process would instead record only the
    // region's window.
    let full = session.clean_trace();
    let windowed = Vm::new(VmConfig::tracing_region(start, end))
        .run(&session.app().module)
        .expect("module verifies")
        .trace
        .expect("tracing enabled");

    // The no-materialization campaign path's footprint: a streamed faulty
    // run retains only the interned location table (plus O(1) scratch),
    // while the materialized per-injection analysis holds the full faulty
    // event stream and operand pool.
    let fault = full
        .iter()
        .skip(full.len() / 3)
        .find(|(_, e)| e.write.is_some())
        .map(|(i, _)| ftkr_vm::FaultSpec::in_result(i as u64, 40))
        .expect("trace has value-producing events");
    let faulty = Vm::new(ftkr_vm::VmConfig::tracing_with_fault(fault))
        .run(&session.app().module)
        .expect("module verifies")
        .trace
        .expect("tracing enabled");

    let records = [
        (format!("fig5_trace/full_events/{app}"), full.len() as u64),
        (format!("fig5_trace/full_operands/{app}"), full.num_operands() as u64),
        (format!("fig5_trace/window_events/{app}"), windowed.len() as u64),
        (
            format!("fig5_trace/window_operands/{app}"),
            windowed.num_operands() as u64,
        ),
        (
            format!("campaign_streaming/materialized_trace_events/{app}"),
            faulty.len() as u64,
        ),
        (
            format!("campaign_streaming/materialized_trace_operands/{app}"),
            faulty.num_operands() as u64,
        ),
        (
            format!("campaign_streaming/streaming_resident_locations/{app}"),
            faulty.num_locations() as u64,
        ),
    ];
    // `count`, not `median_ns`: these are footprint counters, and
    // bench_report keeps them out of the timing table.
    let mut lines = String::new();
    for (name, value) in records {
        lines.push_str(&format!("{{\"name\":\"{name}\",\"count\":{value}}}\n"));
    }
    match out {
        Some(path) => {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| {
                    eprintln!("campaign_shard: cannot open {path}: {e}");
                    exit(1);
                });
            f.write_all(lines.as_bytes()).expect("append stats");
        }
        None => print!("{lines}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "plan" => cmd_plan(rest),
            "run" => cmd_run(rest),
            "merge" => cmd_merge(rest),
            "resume" => cmd_resume(rest),
            "stats" => cmd_stats(rest),
            _ => usage(),
        },
        None => usage(),
    }
}
