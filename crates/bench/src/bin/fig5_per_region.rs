//! Reproduce Figure 5: success rate per code region (iteration 0), for
//! internal and input locations.
fn main() {
    let (effort, json) = ftkr_bench::harness_args();
    let series = fliptracker::experiments::fig5(&effort);
    ftkr_bench::emit(series.to_text(), &series, json);
}
