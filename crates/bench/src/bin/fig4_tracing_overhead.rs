//! Reproduce Figure 4: execution time with and without per-rank tracing.
fn main() {
    let (effort, json) = ftkr_bench::harness_args();
    let fig = fliptracker::experiments::fig4(&effort);
    ftkr_bench::emit(fig.to_text(), &fig, json);
}
