//! Crash-consistent shard-manifest maintenance for distributed campaigns.
//!
//! A coordinator writes `plan.json` plus `plan_shard_<i>.json` (see the
//! `campaign_shard plan` subcommand); workers execute shards into
//! `report_<i>.json`.  Machines die, writes tear, disks rot — this module
//! makes every failure mode either invisible or recoverable:
//!
//! * **Atomic writes.**  [`write_report`] writes to a temp file in the same
//!   directory and renames it over the destination, so a crash at any
//!   instant leaves either the previous intact report or no report — never
//!   a torn one.
//! * **Checksum footers.**  Every report carries an FNV-1a footer line
//!   (`#ftkr-checksum:<hex>`); [`verify_checksum`] catches silent on-disk
//!   corruption that would still parse as JSON (a truncated-but-valid
//!   prefix, a flipped digit in a tally).
//! * **Taint awareness.**  A report whose counts record harness errors or
//!   degraded runs ([`CampaignReport::is_tainted`]) is treated like a
//!   missing one: the shard re-executes, so a resumed manifest always
//!   converges to the tallies of an undisturbed run.
//! * **Bounded retry.**  Transient I/O failures are absorbed by
//!   [`IO_RETRIES`] attempts with deterministic spin backoff — no wall
//!   clock, so chaos schedules replay identically.
//!
//! [`resume_manifest`] scans a directory, re-executes **only** the shards
//! whose report is missing, torn, corrupt or tainted, and returns the
//! merged tally — bit-identical to the monolithic campaign no matter how
//! many times the manifest crashed and resumed in between.

use std::io;
use std::path::{Path, PathBuf};

use fliptracker::{execute_plan, PlanError};
use ftkr_inject::{CampaignPlan, CampaignReport, FailPlan};

// The checksum/atomic-write primitives live in `fliptracker::integrity` so
// the shard manifests and the `ftkr_serve` wire protocol share one
// implementation; re-exported here to keep this module's historical API.
pub use fliptracker::integrity::{
    verify_checksum, with_checksum, write_report, write_report_chaos, CHECKSUM_PREFIX, IO_RETRIES,
};

/// Why a manifest operation failed, preserving the failing shard index and
/// the underlying cause (replaces the old stringly `Result<_, String>`).
#[derive(Debug)]
pub enum ShardError {
    /// The directory contains no `plan_shard_0.json`.
    NotAManifest(PathBuf),
    /// A shard's plan file could not be read.
    PlanRead {
        /// The shard whose plan failed to read.
        shard: usize,
        /// The plan file.
        path: PathBuf,
        /// The I/O failure.
        cause: io::Error,
    },
    /// A shard's plan file is not valid plan JSON.
    PlanParse {
        /// The shard whose plan failed to parse.
        shard: usize,
        /// The plan file.
        path: PathBuf,
        /// The parse failure.
        cause: serde_json::Error,
    },
    /// The campaign executor refused a shard's plan.
    Execute {
        /// The shard whose plan was refused.
        shard: usize,
        /// The executor's reason.
        cause: PlanError,
    },
    /// A shard's report could not be written (even after retries).
    ReportWrite {
        /// The shard whose report failed to persist.
        shard: usize,
        /// The report file.
        path: PathBuf,
        /// The I/O failure of the last attempt.
        cause: io::Error,
    },
}

impl ShardError {
    /// The shard index the error occurred on, if it names one.
    pub fn shard(&self) -> Option<usize> {
        match self {
            ShardError::NotAManifest(_) => None,
            ShardError::PlanRead { shard, .. }
            | ShardError::PlanParse { shard, .. }
            | ShardError::Execute { shard, .. }
            | ShardError::ReportWrite { shard, .. } => Some(*shard),
        }
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NotAManifest(dir) => write!(
                f,
                "{}: no plan_shard_0.json — not a shard manifest directory",
                dir.display()
            ),
            ShardError::PlanRead { shard, path, cause } => {
                write!(f, "shard {shard}: cannot read {}: {cause}", path.display())
            }
            ShardError::PlanParse { shard, path, cause } => {
                write!(f, "shard {shard}: {} is not a plan: {cause}", path.display())
            }
            ShardError::Execute { shard, cause } => {
                write!(f, "shard {shard}: {cause}")
            }
            ShardError::ReportWrite { shard, path, cause } => {
                write!(f, "shard {shard}: cannot write {}: {cause}", path.display())
            }
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::NotAManifest(_) => None,
            ShardError::PlanRead { cause, .. } | ShardError::ReportWrite { cause, .. } => {
                Some(cause)
            }
            ShardError::PlanParse { cause, .. } => Some(cause),
            ShardError::Execute { cause, .. } => Some(cause),
        }
    }
}

/// What a resume pass did to one manifest directory.
#[derive(Debug, Clone)]
pub struct ResumeSummary {
    /// Shard indices whose report was missing, torn, corrupt or tainted and
    /// was (re-)executed by this pass.
    pub executed: Vec<usize>,
    /// Shard indices whose report was already present, checksummed and
    /// untainted.
    pub intact: Vec<usize>,
    /// The merged report over all shards of the manifest.
    pub merged: CampaignReport,
}

/// The plan file of shard `index` in a manifest directory.
pub fn shard_plan_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("plan_shard_{index}.json"))
}

/// The report file of shard `index` in a manifest directory.
pub fn shard_report_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("report_{index}.json"))
}

/// The shard indices present in a manifest directory: `0..k` for the first
/// missing `plan_shard_<k>.json`.
pub fn manifest_shards(dir: &Path) -> Vec<usize> {
    let mut shards = Vec::new();
    while shard_plan_path(dir, shards.len()).exists() {
        let i = shards.len();
        shards.push(i);
    }
    shards
}

// -- crash-consistent report files ----------------------------------------

/// Read a shard report back, demanding the full crash-consistency contract:
/// present, checksummed, parseable, and untainted.  Anything less returns
/// `None` — the caller re-executes the shard.
pub fn read_intact_report(path: &Path) -> Option<CampaignReport> {
    let text = std::fs::read_to_string(path).ok()?;
    let payload = verify_checksum(&text)?;
    let report = CampaignReport::from_json(payload).ok()?;
    (!report.is_tainted()).then_some(report)
}

// -- resuming a manifest ---------------------------------------------------

/// Scan a manifest directory and re-execute exactly the shards whose report
/// is missing, torn, corrupt, or tainted by harness errors / degraded runs;
/// write the fresh reports (crash-consistently) next to the plans and return
/// the merged tally.
pub fn resume_manifest(dir: &Path) -> Result<ResumeSummary, ShardError> {
    resume_manifest_chaos(dir, FailPlan::none())
}

/// [`resume_manifest`] with a fail-point schedule armed on the report
/// *writes* (transient I/O, keyed by shard index) — the hook the chaos suite
/// uses to prove the retry loop absorbs flaky disks during recovery.  The
/// shard executions themselves run fault-free: resume is the recovery pass
/// that must converge.
pub fn resume_manifest_chaos(dir: &Path, chaos: FailPlan) -> Result<ResumeSummary, ShardError> {
    let shards = manifest_shards(dir);
    if shards.is_empty() {
        return Err(ShardError::NotAManifest(dir.to_path_buf()));
    }

    let mut executed = Vec::new();
    let mut intact = Vec::new();
    let mut reports: Vec<CampaignReport> = Vec::with_capacity(shards.len());

    for &i in &shards {
        let report_path = shard_report_path(dir, i);
        // An intact (checksummed, parseable, untainted) report is kept
        // as-is: the campaign derivation is deterministic, so re-running
        // could only reproduce it.
        if let Some(report) = read_intact_report(&report_path) {
            intact.push(i);
            reports.push(report);
            continue;
        }

        let plan_path = shard_plan_path(dir, i);
        let text = std::fs::read_to_string(&plan_path).map_err(|cause| ShardError::PlanRead {
            shard: i,
            path: plan_path.clone(),
            cause,
        })?;
        let plan = CampaignPlan::from_json(&text).map_err(|cause| ShardError::PlanParse {
            shard: i,
            path: plan_path.clone(),
            cause,
        })?;
        let report =
            execute_plan(&plan).map_err(|cause| ShardError::Execute { shard: i, cause })?;
        write_report_chaos(&report_path, &report.to_json(), chaos, i as u64).map_err(|cause| {
            ShardError::ReportWrite {
                shard: i,
                path: report_path.clone(),
                cause,
            }
        })?;
        executed.push(i);
        reports.push(report);
    }

    let merged = reports
        .into_iter()
        .reduce(|a, b| a.merge(&b))
        .expect("at least one shard");
    Ok(ResumeSummary {
        executed,
        intact,
        merged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_round_trip_accepts_only_the_exact_payload() {
        let payload = "{\n  \"x\": 1\n}";
        let framed = with_checksum(payload);
        assert_eq!(verify_checksum(&framed), Some(payload));
        // Any payload mutation is caught.
        let torn = framed.replace('1', "2");
        assert_eq!(verify_checksum(&torn), None);
        // A missing or malformed footer is caught.
        assert_eq!(verify_checksum(payload), None);
        assert_eq!(verify_checksum(&format!("{payload}\n{CHECKSUM_PREFIX}zz\n")), None);
        // Truncation to a valid-JSON prefix is caught too.
        let truncated = &framed[..framed.len() / 2];
        assert_eq!(verify_checksum(truncated), None);
    }

    #[test]
    fn atomic_writes_survive_injected_mid_write_crashes() {
        let dir = std::env::temp_dir().join("ftkr_shard_atomic_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report_0.json");

        // A fault-free write round-trips.
        write_report(&path, "{\"v\": 1}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(verify_checksum(&text), Some("{\"v\": 1}"));

        // A mid-write crash (always fires) must leave the old file intact.
        let crashy = FailPlan {
            write_crash: 1024,
            ..FailPlan::uniform(1, 0)
        };
        assert!(write_report_chaos(&path, "{\"v\": 2}", crashy, 0).is_err());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(verify_checksum(&text), Some("{\"v\": 1}"), "old report survives");

        // Post-rename corruption lands on disk — and the checksum catches it.
        let rotten = FailPlan {
            corrupt_report: 1024,
            ..FailPlan::uniform(1, 0)
        };
        write_report_chaos(&path, "{\"v\": 3}", rotten, 0).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(verify_checksum(&text), None, "corruption must not verify");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retries_absorb_transient_io_but_not_a_dead_disk() {
        let dir = std::env::temp_dir().join("ftkr_shard_retry_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report_0.json");

        // A moderate transient rate: some attempt within IO_RETRIES lands.
        let flaky = FailPlan {
            transient_io: 512,
            ..FailPlan::uniform(33, 0)
        };
        let mut failures = 0;
        for ordinal in 0..16u64 {
            if write_report_chaos(&path, "{\"v\": 1}", flaky, ordinal).is_err() {
                failures += 1;
            }
        }
        // P(all IO_RETRIES=4 attempts fail at 50 %) = 6.25 % per write; the
        // schedule is deterministic, so this bound is exact for seed 33.
        assert!(failures <= 4, "retries absorbed too little: {failures}/16");

        // A dead disk (always fails) exhausts the retries.
        let dead = FailPlan {
            transient_io: 1024,
            ..FailPlan::uniform(1, 0)
        };
        assert!(write_report_chaos(&path, "{\"v\": 1}", dead, 0).is_err());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_error_preserves_the_failing_shard_and_cause() {
        let dir = std::env::temp_dir().join("ftkr_shard_error_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // An empty directory is not a manifest.
        let err = resume_manifest(&dir).unwrap_err();
        assert!(matches!(err, ShardError::NotAManifest(_)));
        assert_eq!(err.shard(), None);
        assert!(err.to_string().contains("not a shard manifest"));

        // A manifest whose shard-1 plan is garbage: the error names shard 1
        // and carries the parse failure as its source.
        std::fs::write(
            shard_plan_path(&dir, 0),
            ftkr_inject::CampaignPlan::new(
                "IS",
                ftkr_inject::CampaignTarget::WholeProgram,
                ftkr_inject::TargetClass::Internal,
                2,
            )
            .to_json(),
        )
        .unwrap();
        std::fs::write(shard_plan_path(&dir, 1), "{not json").unwrap();
        let err = resume_manifest(&dir).unwrap_err();
        assert_eq!(err.shard(), Some(1));
        assert!(matches!(err, ShardError::PlanParse { shard: 1, .. }));
        assert!(std::error::Error::source(&err).is_some());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
