//! Shard-manifest maintenance for distributed campaigns: resuming a
//! partially executed manifest directory.
//!
//! A coordinator writes `plan.json` plus `plan_shard_<i>.json` (see the
//! `campaign_shard plan` subcommand); workers execute shards into
//! `report_<i>.json`.  Machines die and files get truncated —
//! [`resume_manifest`] scans the directory, re-executes **only** the shards
//! whose report is missing or corrupt, and returns the merged tally, which
//! is bit-identical to the monolithic campaign no matter how many times the
//! manifest was resumed in between.

use std::path::{Path, PathBuf};

use fliptracker::execute_plan;
use ftkr_inject::{CampaignPlan, CampaignReport};

/// What a resume pass did to one manifest directory.
#[derive(Debug, Clone)]
pub struct ResumeSummary {
    /// Shard indices whose report was missing or corrupt and was
    /// (re-)executed by this pass.
    pub executed: Vec<usize>,
    /// Shard indices whose report was already present and valid.
    pub intact: Vec<usize>,
    /// The merged report over all shards of the manifest.
    pub merged: CampaignReport,
}

fn shard_plan_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("plan_shard_{index}.json"))
}

fn shard_report_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("report_{index}.json"))
}

/// The shard indices present in a manifest directory: `0..k` for the first
/// missing `plan_shard_<k>.json`.
pub fn manifest_shards(dir: &Path) -> Vec<usize> {
    let mut shards = Vec::new();
    while shard_plan_path(dir, shards.len()).exists() {
        let i = shards.len();
        shards.push(i);
    }
    shards
}

/// Scan a manifest directory and re-execute exactly the shards whose report
/// is missing or does not parse as a [`CampaignReport`]; write the fresh
/// reports next to the plans and return the merged tally.
///
/// Errors are strings suitable for CLI reporting: unreadable/invalid plans,
/// executor failures, or an empty manifest.
pub fn resume_manifest(dir: &Path) -> Result<ResumeSummary, String> {
    let shards = manifest_shards(dir);
    if shards.is_empty() {
        return Err(format!(
            "{}: no plan_shard_0.json — not a shard manifest directory",
            dir.display()
        ));
    }

    let mut executed = Vec::new();
    let mut intact = Vec::new();
    let mut reports: Vec<CampaignReport> = Vec::with_capacity(shards.len());

    for &i in &shards {
        let report_path = shard_report_path(dir, i);
        // A present, parseable report is kept as-is (the campaign derivation
        // is deterministic, so re-running it could only reproduce it).
        if let Ok(text) = std::fs::read_to_string(&report_path) {
            if let Ok(report) = CampaignReport::from_json(&text) {
                intact.push(i);
                reports.push(report);
                continue;
            }
        }

        let plan_path = shard_plan_path(dir, i);
        let text = std::fs::read_to_string(&plan_path)
            .map_err(|e| format!("cannot read {}: {e}", plan_path.display()))?;
        let plan = CampaignPlan::from_json(&text)
            .map_err(|e| format!("{} is not a plan: {e}", plan_path.display()))?;
        let report = execute_plan(&plan).map_err(|e| e.to_string())?;
        std::fs::write(&report_path, format!("{}\n", report.to_json()))
            .map_err(|e| format!("cannot write {}: {e}", report_path.display()))?;
        executed.push(i);
        reports.push(report);
    }

    let merged = reports
        .into_iter()
        .reduce(|a, b| a.merge(&b))
        .expect("at least one shard");
    Ok(ResumeSummary {
        executed,
        intact,
        merged,
    })
}
